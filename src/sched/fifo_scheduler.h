// FIFO baseline (paper §6: "for the FIFO scheduler, we insert operators into
// the global run queue and extract them in FIFO order; an operator processes
// its messages in FIFO order"). Quantum semantics match the other schedulers:
// a worker drains its current operator within the re-scheduling grain, then
// moves the operator to the tail and takes the head (round-robin).
//
// Built on the sharded control plane: lock-free per-operator mailboxes plus
// a FifoReadyQueue of operator ids behind its own small lock, with lazy
// deletion validated by mailbox state CASes.
#pragma once

#include "sched/mailbox.h"
#include "sched/ready_queue.h"
#include "sched/scheduler.h"

namespace cameo {

class FifoScheduler final : public Scheduler {
 public:
  explicit FifoScheduler(SchedulerConfig config = {});

  void Enqueue(Message m, WorkerId producer, SimTime now) override;
  std::size_t DequeueBatch(WorkerId w, SimTime now, std::size_t max_messages,
                           std::vector<Message>& out) override;
  using Scheduler::DequeueBatch;
  void OnComplete(OperatorId op, WorkerId w, SimTime now) override;

  std::string name() const override { return "FIFO"; }

 protected:
  void PurgeReady(const std::vector<OperatorId>& ops) override;

 private:
  void Release(OperatorId op, Mailbox& mb, WorkerId w);
  std::size_t Dispatch(Mailbox& mb, WorkerId w, std::size_t max,
                       std::vector<Message>& out);

  FifoReadyQueue ready_;
};

}  // namespace cameo
