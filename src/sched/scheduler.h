// Scheduler interface shared by the discrete-event simulator and the
// wall-clock thread runtime.
//
// A scheduler owns all pending messages, grouped per target operator in a
// MailboxTable (actor-model exclusivity: an operator never runs on two
// workers at once). Workers call Dequeue when free and OnComplete when an
// invocation finishes. The re-scheduling quantum (paper §5.2, default 1 ms)
// controls how long a worker sticks with its current operator before
// consulting the ready queue again; quantum 0 re-evaluates after every
// message.
//
// Concurrency contract (see DESIGN.md §1): Enqueue may be called from any
// thread concurrently with Dequeue/OnComplete on worker threads. Enqueue
// appends lock-free to the target operator's mailbox and only touches the
// policy's ReadyQueue (its own small lock) on an empty -> non-empty
// transition; Dequeue/OnComplete claim and release mailboxes with atomic
// state transitions. Statistics are sharded per worker and merged on read.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/time.h"
#include "dataflow/message.h"
#include "metrics/sharded_stats.h"

namespace cameo {

/// The scheduler roster (DESIGN.md §3), shared by both execution backends.
enum class SchedulerKind { kCameo, kFifo, kOrleans, kSlot };

std::string ToString(SchedulerKind kind);

struct SchedulerConfig {
  /// Minimum re-scheduling grain. While a worker's elapsed time on one
  /// operator is below this, it keeps draining that operator's mailbox.
  Duration quantum = kMillisecond;
  /// Starvation guard (§6.3): a message's effective global priority never
  /// exceeds enqueue_time + starvation_limit, so long-waiting work is
  /// eventually ordered FIFO. kTimeMax disables the guard (paper default).
  Duration starvation_limit = kTimeMax;
};

/// Merged snapshot of the per-worker stat shards. Exact once workers are
/// quiescent (after Drain()).
struct SchedulerStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dispatched = 0;
  /// Worker switched from one operator to a different one.
  std::uint64_t operator_swaps = 0;
  /// Worker kept its current operator at a quantum boundary.
  std::uint64_t continuations = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Hands a message to the scheduler. `producer` identifies the worker whose
  /// invocation emitted it (invalid WorkerId for external arrivals); the
  /// Orleans bag model uses it for thread-local affinity. Thread-safe.
  virtual void Enqueue(Message m, WorkerId producer, SimTime now) = 0;

  /// Picks the next message for worker `w`; nullopt when nothing is runnable
  /// for this worker. Marks the target operator active. Thread-safe; at most
  /// one concurrent call per worker id.
  virtual std::optional<Message> Dequeue(WorkerId w, SimTime now) = 0;

  /// Reports that worker `w` finished an invocation of `op`. Must be called
  /// by the worker the message was dequeued on.
  virtual void OnComplete(OperatorId op, WorkerId w, SimTime now) = 0;

  std::size_t pending() const {
    std::int64_t p = pending_.load(std::memory_order_relaxed);
    return p > 0 ? static_cast<std::size_t>(p) : 0;
  }

  virtual std::string name() const = 0;

  SchedulerStats stats() const {
    SchedulerStats s;
    s.enqueued = shards_.enqueued.Total();
    s.dispatched = shards_.dispatched.Total();
    s.operator_swaps = shards_.operator_swaps.Total();
    s.continuations = shards_.continuations.Total();
    return s;
  }

  const SchedulerConfig& config() const { return config_; }

  /// Upper bound on worker ids; slots are pre-allocated so each worker
  /// mutates only its own cache line with no map insert races. Backends
  /// validate their worker count against this at construction.
  static constexpr std::int64_t kMaxWorkers = 256;

 protected:
  struct alignas(64) WorkerSlot {
    OperatorId current;  // operator this worker last ran
    SimTime quantum_start = 0;
    bool has_current = false;
  };

  explicit Scheduler(SchedulerConfig config)
      : config_(config), slots_(kMaxWorkers) {}

  WorkerSlot& slot(WorkerId w) {
    CAMEO_EXPECTS(w.valid() && w.value < kMaxWorkers);
    return slots_[static_cast<std::size_t>(w.value)];
  }

  std::size_t shard_of(WorkerId w) const {
    return w.valid() ? static_cast<std::size_t>(w.value)
                     : ThisThreadStatShard();
  }

  struct StatShards {
    ShardedCounter enqueued;
    ShardedCounter dispatched;
    ShardedCounter operator_swaps;
    ShardedCounter continuations;
  };

  SchedulerConfig config_;
  StatShards shards_;
  std::atomic<std::int64_t> pending_{0};
  std::vector<WorkerSlot> slots_;
};

/// Shared factory used by both backends. `num_workers` is only consulted by
/// the slot scheduler's round-robin pinning.
std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind, int num_workers,
                                         const SchedulerConfig& config);

}  // namespace cameo
