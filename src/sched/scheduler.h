// Scheduler interface shared by the discrete-event simulator and the
// wall-clock thread runtime.
//
// A scheduler owns all pending messages, grouped per target operator in a
// MailboxTable (actor-model exclusivity: an operator never runs on two
// workers at once). Workers call Dequeue when free and OnComplete when an
// invocation finishes. The re-scheduling quantum (paper §5.2, default 1 ms)
// controls how long a worker sticks with its current operator before
// consulting the ready queue again; quantum 0 re-evaluates after every
// message.
//
// Concurrency contract (see DESIGN.md §1): Enqueue may be called from any
// thread concurrently with Dequeue/OnComplete on worker threads. Enqueue
// appends lock-free to the target operator's mailbox and only touches the
// policy's ReadyQueue (its own small lock) on an empty -> non-empty
// transition; Dequeue/OnComplete claim and release mailboxes with atomic
// state transitions. Statistics are sharded per worker and merged on read.
//
// Dynamic multi-tenancy: RetireOperators() retires a removed query's
// mailboxes -- each rejects every later Enqueue (counted in
// `stats().rejected`), has its remaining backlog purged with accounting
// (`stats().purged`), and parks at the terminal kRetired state so no lazy
// ready-queue entry can ever claim it again. SetWorkerTarget() lets the
// wall-clock runtime grow and shrink its worker pool; only the slot
// scheduler (static pinning) has real work to do there.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/time.h"
#include "dataflow/message.h"
#include "metrics/sharded_stats.h"
#include "sched/mailbox.h"

namespace cameo {

/// The scheduler roster (DESIGN.md §4), shared by both execution backends.
enum class SchedulerKind { kCameo, kFifo, kOrleans, kSlot };

std::string ToString(SchedulerKind kind);

struct SchedulerConfig {
  /// Minimum re-scheduling grain. While a worker's elapsed time on one
  /// operator is below this, it keeps draining that operator's mailbox.
  Duration quantum = kMillisecond;
  /// Starvation guard (§6.3): a message's effective global priority never
  /// exceeds enqueue_time + starvation_limit, so long-waiting work is
  /// eventually ordered FIFO. kTimeMax disables the guard (paper default).
  Duration starvation_limit = kTimeMax;
  /// Claim-and-drain batching (paper §6 / Fig. 13 knob): the maximum number
  /// of messages a worker drains from one claimed mailbox per activation.
  /// One claim + one release amortize over the whole batch. 1 reproduces the
  /// classic claim-one dispatch exactly (fixed-seed sim replays are
  /// bit-identical). Cameo re-checks the ready queue's head between the
  /// batch's messages and cuts the drain short when a strictly more urgent
  /// operator is waiting, so priority semantics survive batching.
  int batch_size = 1;
};

/// Merged snapshot of the per-worker stat shards. Exact once workers are
/// quiescent (after Drain()).
struct SchedulerStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dispatched = 0;
  /// Worker switched from one operator to a different one.
  std::uint64_t operator_swaps = 0;
  /// Worker kept its current operator at a quantum boundary.
  std::uint64_t continuations = 0;
  /// Enqueues refused because the target operator was retired. Not counted
  /// in `enqueued`.
  std::uint64_t rejected = 0;
  /// Messages accepted earlier but discarded by retirement purges. At
  /// quiescence, enqueued == dispatched + purged.
  std::uint64_t purged = 0;
  /// Messages refused by admission control before reaching the scheduler
  /// (overload shedding, shard_runtime.h). Not counted in `enqueued`.
  std::uint64_t shed = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Hands a message to the scheduler. `producer` identifies the worker whose
  /// invocation emitted it (invalid WorkerId for external arrivals); the
  /// Orleans bag model uses it for thread-local affinity. Thread-safe.
  virtual void Enqueue(Message m, WorkerId producer, SimTime now) = 0;

  /// Claims the next runnable operator for worker `w` and drains up to
  /// `max_messages` of its pending messages into `out` (appended, in the
  /// mailbox's dispatch order). Every message in the batch targets the same
  /// operator, which stays claimed (kActive): after invoking the batch the
  /// worker must call OnComplete exactly once with that operator. Returns
  /// the number of messages appended; 0 when nothing is runnable. Policy
  /// invariants are re-checked between messages (see
  /// SchedulerConfig::batch_size). Thread-safe; at most one concurrent call
  /// per worker id.
  virtual std::size_t DequeueBatch(WorkerId w, SimTime now,
                                   std::size_t max_messages,
                                   std::vector<Message>& out) = 0;

  /// DequeueBatch with the configured batch size.
  std::size_t DequeueBatch(WorkerId w, SimTime now, std::vector<Message>& out) {
    return DequeueBatch(w, now, static_cast<std::size_t>(config_.batch_size),
                        out);
  }

  /// Single-message convenience wrapper over DequeueBatch (tests and
  /// quantum-granularity callers); nullopt when nothing is runnable.
  std::optional<Message> Dequeue(WorkerId w, SimTime now);

  /// Reports that worker `w` finished an invocation (single message or a
  /// drained batch) of `op`. Must be called by the worker that dequeued it.
  virtual void OnComplete(OperatorId op, WorkerId w, SimTime now) = 0;

  /// Retires a removed query's operators: marks their mailboxes retiring
  /// (later Enqueues are rejected and counted), purges whatever backlog is
  /// claimable right now (counted in stats().purged), erases their lazy
  /// ready-queue entries, and parks each mailbox at kRetired. A mailbox a
  /// worker currently holds kActive finishes retirement in that worker's
  /// release path. Returns the number of messages purged by this call.
  /// Thread-safe; may run concurrently with Enqueue/Dequeue/OnComplete.
  std::int64_t RetireOperators(const std::vector<OperatorId>& ops);

  /// Announces the runtime's new worker-pool size. Call once with the new
  /// target before signalling shrinking workers to exit (so future work is
  /// placed within the surviving range) and once after they have exited (so
  /// work parked on dead workers' private structures is recovered). The
  /// default is a no-op; only placement-aware schedulers override.
  virtual void SetWorkerTarget(int num_workers) { (void)num_workers; }

  std::size_t pending() const {
    std::int64_t p = pending_.load(std::memory_order_relaxed);
    return p > 0 ? static_cast<std::size_t>(p) : 0;
  }

  virtual std::string name() const = 0;

  SchedulerStats stats() const {
    SchedulerStats s;
    s.enqueued = shards_.enqueued.Total();
    s.dispatched = shards_.dispatched.Total();
    s.operator_swaps = shards_.operator_swaps.Total();
    s.continuations = shards_.continuations.Total();
    s.rejected = shards_.rejected.Total();
    s.purged = shards_.purged.Total();
    return s;
  }

  const SchedulerConfig& config() const { return config_; }

  /// Upper bound on worker ids; slots are pre-allocated so each worker
  /// mutates only its own cache line with no map insert races. Backends
  /// validate their worker count against this at construction.
  static constexpr std::int64_t kMaxWorkers = 256;

 protected:
  struct alignas(64) WorkerSlot {
    OperatorId current;  // operator this worker last ran
    SimTime quantum_start = 0;
    bool has_current = false;
  };

  Scheduler(SchedulerConfig config, MailboxOrder order)
      : config_(config), table_(order), slots_(kMaxWorkers) {
    // Fail at construction, not deep inside the first dispatch: 0 would trip
    // DrainClaimed's precondition and a negative value would wrap into an
    // unbounded drain.
    CAMEO_CHECK(config_.batch_size >= 1 &&
                "SchedulerConfig::batch_size must be >= 1");
  }

  WorkerSlot& slot(WorkerId w) {
    CAMEO_EXPECTS(w.valid() && w.value < kMaxWorkers);
    return slots_[static_cast<std::size_t>(w.value)];
  }

  std::size_t shard_of(WorkerId w) const {
    return w.valid() ? static_cast<std::size_t>(w.value)
                     : ThisThreadStatShard();
  }

  struct StatShards {
    ShardedCounter enqueued;
    ShardedCounter dispatched;
    ShardedCounter operator_swaps;
    ShardedCounter continuations;
    ShardedCounter rejected;
    ShardedCounter purged;
  };

  /// Erases the retiring operators' entries from the subclass's ready
  /// structure(s) (eager cleanup; correctness rests on epoch validation).
  virtual void PurgeReady(const std::vector<OperatorId>& ops) = 0;

  /// Owner-side completion of a retire: purges the claimed mailbox with
  /// accounting and parks it at kRetired, reclaiming if a racing push lands
  /// after the final store. Call instead of ReleaseMailbox whenever
  /// `mb.retiring()` is observed while holding the claim. Returns the number
  /// of messages purged.
  std::int64_t FinishRetire(Mailbox& mb, WorkerId w) {
    std::int64_t total = 0;
    for (;;) {
      std::int64_t purged = mb.PurgeBacklog();
      if (purged > 0) {
        total += purged;
        pending_.fetch_sub(purged, std::memory_order_relaxed);
        shards_.purged.Inc(shard_of(w), static_cast<std::uint64_t>(purged));
      }
      mb.ReleaseToRetired();
      if (mb.size() == 0) return total;
      // A push raced the retiring flag; take the word back and purge again.
      if (!mb.TryReclaimRetired()) return total;  // another purger owns it
    }
  }

  /// Enqueue-side handler for the post-push state read seeing kRetired: our
  /// own push (and possibly others) landed after the final store, so purge
  /// it back out with accounting.
  void DiscardIntoRetired(Mailbox& mb, WorkerId w) {
    if (mb.size() > 0 && mb.TryReclaimRetired()) FinishRetire(mb, w);
  }

  /// The claim-and-drain core: pops up to `max` messages from a mailbox the
  /// caller has claimed (and already DrainInbox-ed) into `out`, batching the
  /// pending/dispatched accounting into one update. `keep_going(mb)` is the
  /// policy re-check, consulted before every message after the first --
  /// returning false cuts the batch short (the first message is
  /// unconditional: a claim always dispatches at least one). Returns the
  /// number of messages popped.
  template <typename KeepGoingFn>
  std::size_t DrainClaimed(Mailbox& mb, WorkerId w, std::size_t max,
                           std::vector<Message>& out,
                           KeepGoingFn&& keep_going) {
    CAMEO_EXPECTS(max >= 1 && !mb.buffer_empty());
    std::size_t n = 0;
    while (n < max && !mb.buffer_empty()) {
      if (n > 0 && !keep_going(mb)) break;
      out.push_back(mb.PopBest());
      ++n;
    }
    pending_.fetch_sub(static_cast<std::int64_t>(n),
                       std::memory_order_relaxed);
    shards_.dispatched.Inc(shard_of(w), n);
    return n;
  }

  SchedulerConfig config_;
  MailboxTable table_;
  StatShards shards_;
  std::atomic<std::int64_t> pending_{0};
  std::vector<WorkerSlot> slots_;
};

/// Shared factory used by both backends. `num_workers` is only consulted by
/// the slot scheduler's round-robin pinning.
std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind, int num_workers,
                                         const SchedulerConfig& config);

}  // namespace cameo
