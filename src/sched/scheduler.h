// Scheduler interface shared by the discrete-event simulator and the
// wall-clock thread runtime.
//
// A scheduler owns all pending messages, grouped per target operator
// (actor-model exclusivity: an operator never runs on two workers at once).
// Workers call Dequeue when free and OnComplete when an invocation finishes.
// The re-scheduling quantum (paper §5.2, default 1 ms) controls how long a
// worker sticks with its current operator before consulting the run queue
// again; quantum 0 re-evaluates after every message.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/time.h"
#include "dataflow/message.h"

namespace cameo {

struct SchedulerConfig {
  /// Minimum re-scheduling grain. While a worker's elapsed time on one
  /// operator is below this, it keeps draining that operator's mailbox.
  Duration quantum = kMillisecond;
  /// Starvation guard (§6.3): a message's effective global priority never
  /// exceeds enqueue_time + starvation_limit, so long-waiting work is
  /// eventually ordered FIFO. kTimeMax disables the guard (paper default).
  Duration starvation_limit = kTimeMax;
};

struct SchedulerStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dispatched = 0;
  /// Worker switched from one operator to a different one.
  std::uint64_t operator_swaps = 0;
  /// Worker kept its current operator at a quantum boundary.
  std::uint64_t continuations = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Hands a message to the scheduler. `producer` identifies the worker whose
  /// invocation emitted it (invalid WorkerId for external arrivals); the
  /// Orleans bag model uses it for thread-local affinity.
  virtual void Enqueue(Message m, WorkerId producer, SimTime now) = 0;

  /// Picks the next message for worker `w`; nullopt when nothing is runnable
  /// for this worker. Marks the target operator active.
  virtual std::optional<Message> Dequeue(WorkerId w, SimTime now) = 0;

  /// Reports that worker `w` finished an invocation of `op`.
  virtual void OnComplete(OperatorId op, WorkerId w, SimTime now) = 0;

  virtual std::size_t pending() const = 0;
  virtual std::string name() const = 0;

  const SchedulerStats& stats() const { return stats_; }
  const SchedulerConfig& config() const { return config_; }

 protected:
  explicit Scheduler(SchedulerConfig config) : config_(config) {}

  SchedulerConfig config_;
  SchedulerStats stats_;
};

namespace detail {

/// Per-operator mailbox state shared by the scheduler implementations.
struct OpState {
  std::deque<Message> mailbox;  // FIFO arrival order
  bool active = false;          // currently running on some worker
  bool queued = false;          // present in the scheduler's run structure
};

/// Per-worker quantum bookkeeping shared by the scheduler implementations.
struct WorkerSlot {
  OperatorId current;      // operator this worker last ran
  SimTime quantum_start = 0;
  bool has_current = false;
};

}  // namespace detail

}  // namespace cameo
