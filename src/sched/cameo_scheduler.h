// The Cameo scheduler (paper §5.2, Fig. 5(b)): the lower, *stateless* layer
// of the two-level architecture. It keeps
//   - per operator: pending messages ordered by PRI_local, and
//   - globally: operators ordered by the PRI_global of their head message
// in an updatable min-heap. All priority information arrives inside each
// message's PriorityContext; the scheduler itself holds no per-job state.
//
// Quantum rule (paper): a worker keeps draining its current operator's
// mailbox; once the re-scheduling grain elapses it peeks at the run queue and
// swaps only if a strictly higher-priority operator is waiting.
//
// Starvation guard (§6.3): with a finite `starvation_limit`, a message's
// effective global priority is capped at enqueue_time + limit, so overload
// degrades to FIFO among long-waiting messages instead of unbounded delay.
#pragma once

#include <map>
#include <unordered_map>

#include "common/updatable_heap.h"
#include "sched/scheduler.h"

namespace cameo {

class CameoScheduler final : public Scheduler {
 public:
  explicit CameoScheduler(SchedulerConfig config = {});

  void Enqueue(Message m, WorkerId producer, SimTime now) override;
  std::optional<Message> Dequeue(WorkerId w, SimTime now) override;
  void OnComplete(OperatorId op, WorkerId w, SimTime now) override;

  std::size_t pending() const override { return pending_; }
  std::string name() const override { return "Cameo"; }

  /// Global priority of the most urgent runnable operator (tests/telemetry).
  std::optional<Priority> TopPriority() const;

 private:
  struct GlobalKey {
    Priority pri;
    std::int64_t seq;  // head message id: deterministic FIFO tie-break
    friend bool operator<(const GlobalKey& a, const GlobalKey& b) {
      if (a.pri != b.pri) return a.pri < b.pri;
      return a.seq < b.seq;
    }
  };

  using LocalKey = std::pair<Priority, std::int64_t>;  // (PRI_local, msg id)

  struct OpQueue {
    std::map<LocalKey, Message> mailbox;  // head = begin()
    bool active = false;
    bool queued = false;  // present in run_queue_
    UpdatableHeap<GlobalKey, OperatorId>::Handle handle = 0;
  };

  GlobalKey HeadKey(const OpQueue& q) const;
  Message PopHead(OpQueue& q);
  void PushRunnable(OperatorId id, OpQueue& q);
  void RemoveFromRunQueue(OpQueue& q);

  std::unordered_map<OperatorId, OpQueue> ops_;
  UpdatableHeap<GlobalKey, OperatorId> run_queue_;
  std::unordered_map<WorkerId, detail::WorkerSlot> workers_;
  std::size_t pending_ = 0;
};

}  // namespace cameo
