// The Cameo scheduler (paper §5.2, Fig. 5(b)): the lower, *stateless* layer
// of the two-level architecture. It keeps
//   - per operator: pending messages ordered by PRI_local (inside the
//     operator's lock-free Mailbox), and
//   - globally: runnable operators ordered by PRI_global in a detached
//     CameoReadyQueue behind its own small lock.
// All priority information arrives inside each message's PriorityContext;
// the scheduler itself holds no per-job state.
//
// Enqueue appends lock-free to the target mailbox; the ReadyQueue is touched
// only on an empty -> non-empty transition or when an arrival strictly
// improves a queued operator's registered priority (a duplicate entry is
// inserted; pop-side validation discards the stale one).
//
// Quantum rule (paper): a worker keeps draining its current operator's
// mailbox; once the re-scheduling grain elapses it peeks at the ready queue
// and swaps only if a strictly higher-priority operator is waiting.
//
// Starvation guard (§6.3): with a finite `starvation_limit`, a message's
// effective global priority is capped at enqueue_time + limit, so overload
// degrades to FIFO among long-waiting messages instead of unbounded delay.
#pragma once

#include "sched/mailbox.h"
#include "sched/ready_queue.h"
#include "sched/scheduler.h"

namespace cameo {

class CameoScheduler final : public Scheduler {
 public:
  explicit CameoScheduler(SchedulerConfig config = {});

  void Enqueue(Message m, WorkerId producer, SimTime now) override;
  std::size_t DequeueBatch(WorkerId w, SimTime now, std::size_t max_messages,
                           std::vector<Message>& out) override;
  using Scheduler::DequeueBatch;
  void OnComplete(OperatorId op, WorkerId w, SimTime now) override;

  std::string name() const override { return "Cameo"; }

  /// Global priority of the most urgent runnable operator (tests/telemetry).
  /// Compacts stale ready-queue entries as a side effect.
  std::optional<Priority> TopPriority();

 protected:
  void PurgeReady(const std::vector<OperatorId>& ops) override;

 private:
  Priority EffectivePri(const Message& m) const;
  ReadyKey KeyFor(const Message& m) const {
    return ReadyKey{EffectivePri(m), m.id.value};
  }
  bool StillQueued(OperatorId op, std::uint64_t epoch) const;
  /// Re-queues, idles, or (for a retiring operator) retires a claimed
  /// mailbox (release protocol).
  void Release(OperatorId op, Mailbox& mb, WorkerId w);
  /// Drains up to `max` messages from the claimed mailbox, stopping early
  /// when a strictly more urgent operator is ready (priority re-check
  /// between messages preserves Cameo dispatch order under batching).
  std::size_t Dispatch(Mailbox& mb, WorkerId w, std::size_t max,
                       std::vector<Message>& out);

  CameoReadyQueue ready_;
};

}  // namespace cameo
