#include "sched/mailbox.h"

#include <algorithm>

#include "common/check.h"

namespace cameo {

namespace {

/// Min-order on (PRI_local, message id): deterministic total order, FIFO
/// tie-break. std::push_heap builds a max-heap, so "less" is inverted.
struct LocalOrderGreater {
  bool operator()(const Message& a, const Message& b) const {
    if (a.pc.pri_local != b.pc.pri_local) {
      return a.pc.pri_local > b.pc.pri_local;
    }
    return a.id.value > b.id.value;
  }
};

}  // namespace

Mailbox::~Mailbox() {
  Node* n = inbox_.load(std::memory_order_acquire);
  while (n != nullptr) {
    Node* next = n->next;
    NodePool::Global().Delete(n);
    n = next;
  }
}

bool Mailbox::Push(Message m) {
  // The retiring flag is checked before the size increment, so once a
  // retirer has observed the flag *and* a size, only pushes it will see (or
  // that the final kRetired re-check catches) can be in flight.
  if (retiring_.load(std::memory_order_seq_cst)) return false;
  // Size first: the release protocol's post-kIdle re-check must observe this
  // increment whenever our later state read sees kActive (SC total order).
  size_.fetch_add(1, std::memory_order_seq_cst);
  Node* n = NodePool::Global().New(std::move(m));
  Node* head = inbox_.load(std::memory_order_relaxed);
  do {
    n->next = head;
  } while (!inbox_.compare_exchange_weak(head, n, std::memory_order_release,
                                         std::memory_order_relaxed));
  return true;
}

void Mailbox::DrainInbox() {
  Node* n = inbox_.exchange(nullptr, std::memory_order_acquire);
  // The grabbed chain is LIFO; reverse to recover push order (pushes are
  // linearized by the CAS, so this is global arrival order).
  Node* fifo = nullptr;
  while (n != nullptr) {
    Node* next = n->next;
    n->next = fifo;
    fifo = n;
    n = next;
  }
  while (fifo != nullptr) {
    if (order_ == MailboxOrder::kFifo) {
      buffer_.push_back(std::move(fifo->msg));
    } else {
      heap_.push_back(std::move(fifo->msg));
      std::push_heap(heap_.begin(), heap_.end(), LocalOrderGreater{});
    }
    Node* next = fifo->next;
    NodePool::Global().Delete(fifo);
    fifo = next;
  }
}

const Message& Mailbox::PeekBest() const {
  CAMEO_EXPECTS(!buffer_empty());
  return order_ == MailboxOrder::kFifo ? buffer_.front() : heap_.front();
}

Message Mailbox::PopBest() {
  CAMEO_EXPECTS(!buffer_empty());
  Message out;
  if (order_ == MailboxOrder::kFifo) {
    out = std::move(buffer_.front());
    buffer_.pop_front();
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), LocalOrderGreater{});
    out = std::move(heap_.back());
    heap_.pop_back();
  }
  size_.fetch_sub(1, std::memory_order_seq_cst);
  return out;
}

bool Mailbox::TryMarkQueued(std::uint64_t& epoch_out) {
  std::uint64_t w = word_.load(std::memory_order_seq_cst);
  while (StateOf(w) == State::kIdle) {
    std::uint64_t next = Pack(State::kQueued, EpochOf(w) + 1);
    if (word_.compare_exchange_weak(w, next, std::memory_order_seq_cst)) {
      epoch_out = EpochOf(next);
      return true;
    }
  }
  return false;
}

bool Mailbox::TryClaimQueued(std::uint64_t epoch) {
  std::uint64_t expected = Pack(State::kQueued, epoch);
  return word_.compare_exchange_strong(expected, Pack(State::kActive, epoch),
                                       std::memory_order_seq_cst);
}

bool Mailbox::TryClaim() {
  std::uint64_t w = word_.load(std::memory_order_seq_cst);
  while (StateOf(w) == State::kIdle || StateOf(w) == State::kQueued) {
    if (word_.compare_exchange_weak(w, Pack(State::kActive, EpochOf(w)),
                                    std::memory_order_seq_cst)) {
      return true;
    }
  }
  return false;
}

bool Mailbox::TryReclaim() {
  std::uint64_t w = word_.load(std::memory_order_seq_cst);
  while (StateOf(w) == State::kIdle) {
    if (word_.compare_exchange_weak(w, Pack(State::kActive, EpochOf(w)),
                                    std::memory_order_seq_cst)) {
      return true;
    }
  }
  return false;
}

std::uint64_t Mailbox::ReleaseToQueued() {
  // Only the owner transitions out of kActive, so a plain bump-and-store is
  // race-free; the new epoch opens the next queued session.
  std::uint64_t w = word_.load(std::memory_order_seq_cst);
  CAMEO_EXPECTS(StateOf(w) == State::kActive);
  std::uint64_t next = Pack(State::kQueued, EpochOf(w) + 1);
  word_.store(next, std::memory_order_seq_cst);
  return EpochOf(next);
}

void Mailbox::ReleaseToIdle() {
  std::uint64_t w = word_.load(std::memory_order_seq_cst);
  CAMEO_EXPECTS(StateOf(w) == State::kActive);
  word_.store(Pack(State::kIdle, EpochOf(w)), std::memory_order_seq_cst);
}

void Mailbox::ReleaseToRetired() {
  std::uint64_t w = word_.load(std::memory_order_seq_cst);
  CAMEO_EXPECTS(StateOf(w) == State::kActive);
  CAMEO_EXPECTS(retiring());
  // The epoch bump invalidates every outstanding queued-session entry even
  // if the mailbox is transiently reclaimed for a purge.
  word_.store(Pack(State::kRetired, EpochOf(w) + 1), std::memory_order_seq_cst);
}

bool Mailbox::TryReclaimRetired() {
  std::uint64_t w = word_.load(std::memory_order_seq_cst);
  while (StateOf(w) == State::kRetired) {
    if (word_.compare_exchange_weak(w, Pack(State::kActive, EpochOf(w)),
                                    std::memory_order_seq_cst)) {
      return true;
    }
  }
  return false;
}

std::int64_t Mailbox::PurgeBacklog() {
  CAMEO_EXPECTS(state() == State::kActive);
  DrainInbox();
  auto dropped = static_cast<std::int64_t>(buffered());
  buffer_.clear();
  heap_.clear();
  if (dropped > 0) size_.fetch_sub(dropped, std::memory_order_seq_cst);
  return dropped;
}

bool Mailbox::TryLowerRegisteredPri(Priority p) {
  Priority cur = registered_pri_.load(std::memory_order_relaxed);
  while (p < cur) {
    if (registered_pri_.compare_exchange_weak(cur, p,
                                              std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace cameo
