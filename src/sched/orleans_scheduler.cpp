#include "sched/orleans_scheduler.h"

#include <unordered_set>

#include "common/check.h"

namespace cameo {

OrleansScheduler::OrleansScheduler(SchedulerConfig config)
    : Scheduler(config, MailboxOrder::kFifo) {}

void OrleansScheduler::Release(OperatorId op, Mailbox& mb, WorkerId w,
                               bool to_global) {
  if (mb.retiring()) {
    FinishRetire(mb, w);
    return;
  }
  ReleaseMailbox(
      mb, [](Mailbox&) { return 0; },
      [this, op, w, to_global](int, std::uint64_t epoch) {
        if (to_global || !w.valid()) {
          ready_.PushGlobal(op, epoch);
        } else {
          ready_.PushLocal(w, op, epoch);  // work stays near its worker
        }
      });
  if (mb.retiring() && mb.TryClaim()) FinishRetire(mb, w);
}

void OrleansScheduler::PurgeReady(const std::vector<OperatorId>& ops) {
  ready_.EraseOps(std::unordered_set<OperatorId>(ops.begin(), ops.end()));
}

std::size_t OrleansScheduler::Dispatch(Mailbox& mb, WorkerId w,
                                       std::size_t max,
                                       std::vector<Message>& out) {
  // The bag model has no cross-operator urgency: drain the claimed
  // activation's next `max` messages unconditionally.
  return DrainClaimed(mb, w, max, out, [](Mailbox&) { return true; });
}

void OrleansScheduler::Enqueue(Message m, WorkerId producer, SimTime now) {
  m.enqueue_time = now;
  const OperatorId op = m.target;
  Mailbox& mb = table_.Get(op);
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (!mb.Push(std::move(m))) {  // operator retired: reject, with accounting
    pending_.fetch_sub(1, std::memory_order_relaxed);
    shards_.rejected.Inc(shard_of(producer));
    return;
  }
  shards_.enqueued.Inc(shard_of(producer));
  for (;;) {
    Mailbox::State s = mb.state();
    if (s == Mailbox::State::kRetired) {
      DiscardIntoRetired(mb, producer);
      return;
    }
    if (s != Mailbox::State::kIdle) return;
    std::uint64_t epoch = 0;
    if (mb.TryMarkQueued(epoch)) {
      if (producer.valid()) {
        ready_.PushLocal(producer, op, epoch);  // thread-local fast path
      } else {
        ready_.PushGlobal(op, epoch);
      }
      return;
    }
  }
}

std::size_t OrleansScheduler::DequeueBatch(WorkerId w, SimTime now,
                                           std::size_t max_messages,
                                           std::vector<Message>& out) {
  ready_.RegisterWorker(w);
  WorkerSlot& sl = slot(w);

  if (sl.has_current) {
    Mailbox* mb = table_.Find(sl.current);
    if (mb != nullptr && mb->size() > 0 && mb->TryClaim()) {
      if (mb->retiring()) {  // current operator's query was removed
        FinishRetire(*mb, w);
        sl.has_current = false;
      } else {
        mb->DrainInbox();
        if (mb->buffer_empty()) {
          Release(sl.current, *mb, w, /*to_global=*/false);
        } else {
          bool cont = now - sl.quantum_start < config_.quantum;
          if (cont) {
            shards_.continuations.Inc(shard_of(w));
            return Dispatch(*mb, w, max_messages, out);
          }
          // Quantum expired: yield the turn to the global tail.
          Release(sl.current, *mb, w, /*to_global=*/true);
        }
      }
    }
  }

  for (;;) {
    auto next = ready_.Take(w, [this](OperatorId id, std::uint64_t epoch) {
      Mailbox* mb = table_.Find(id);
      return mb != nullptr && mb->TryClaimQueued(epoch);
    });
    if (!next.has_value()) break;
    Mailbox& mb = *table_.Find(*next);
    if (mb.retiring()) {  // removed id: discard its backlog, never dispatch
      FinishRetire(mb, w);
      continue;
    }
    mb.DrainInbox();
    if (mb.buffer_empty()) {  // defensive: kQueued implies pending work
      Release(*next, mb, w, /*to_global=*/false);
      continue;
    }
    if (sl.has_current && sl.current != *next) {
      shards_.operator_swaps.Inc(shard_of(w));
    }
    sl.current = *next;
    sl.has_current = true;
    sl.quantum_start = now;
    return Dispatch(mb, w, max_messages, out);
  }

  // Nothing anywhere else: resume the current operator if it still has work
  // (its yielded entry may have been claimed and exhausted above).
  if (sl.has_current) {
    Mailbox* mb = table_.Find(sl.current);
    if (mb != nullptr && mb->size() > 0 && mb->TryClaim()) {
      if (mb->retiring()) {
        FinishRetire(*mb, w);
        sl.has_current = false;
        return 0;
      }
      mb->DrainInbox();
      if (!mb->buffer_empty()) {
        sl.quantum_start = now;
        shards_.continuations.Inc(shard_of(w));
        return Dispatch(*mb, w, max_messages, out);
      }
      Release(sl.current, *mb, w, /*to_global=*/false);
    }
  }
  return 0;
}

void OrleansScheduler::OnComplete(OperatorId op, WorkerId w, SimTime /*now*/) {
  Mailbox* mb = table_.Find(op);
  CAMEO_EXPECTS(mb != nullptr && mb->state() == Mailbox::State::kActive);
  Release(op, *mb, w, /*to_global=*/false);
}

}  // namespace cameo
