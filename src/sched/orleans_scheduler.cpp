#include "sched/orleans_scheduler.h"

#include "common/check.h"

namespace cameo {

OrleansScheduler::OrleansScheduler(SchedulerConfig config)
    : Scheduler(config) {}

void OrleansScheduler::Enqueue(Message m, WorkerId producer, SimTime now) {
  m.enqueue_time = now;
  detail::OpState& q = ops_[m.target];
  OperatorId id = m.target;
  q.mailbox.push_back(std::move(m));
  ++pending_;
  ++stats_.enqueued;
  if (!q.active && !q.queued) {
    if (producer.valid()) {
      local_[producer].push_back(id);  // thread-local fast path
    } else {
      global_.push_back(id);
    }
    q.queued = true;
  }
}

detail::OpState* OrleansScheduler::FindRunnable(OperatorId id) {
  auto it = ops_.find(id);
  if (it == ops_.end()) return nullptr;
  detail::OpState& q = it->second;
  if (q.active || q.mailbox.empty()) return nullptr;
  return &q;
}

Message OrleansScheduler::Claim(detail::OpState& q) {
  q.queued = false;  // any remaining bag entries become stale
  q.active = true;
  Message m = std::move(q.mailbox.front());
  q.mailbox.pop_front();
  --pending_;
  ++stats_.dispatched;
  return m;
}

std::optional<OperatorId> OrleansScheduler::TakeFor(WorkerId w) {
  auto drain = [&](auto take) -> std::optional<OperatorId> {
    while (auto id = take()) {
      auto it = ops_.find(*id);
      if (it == ops_.end() || !it->second.queued) continue;  // stale
      it->second.queued = false;
      if (it->second.active || it->second.mailbox.empty()) continue;
      return id;
    }
    return std::nullopt;
  };

  // 1. Own bag, LIFO.
  std::vector<OperatorId>& mine = local_[w];
  if (auto id = drain([&]() -> std::optional<OperatorId> {
        if (mine.empty()) return std::nullopt;
        OperatorId id = mine.back();
        mine.pop_back();
        return id;
      })) {
    return id;
  }
  // 2. Global queue, FIFO.
  if (auto id = drain([&]() -> std::optional<OperatorId> {
        if (global_.empty()) return std::nullopt;
        OperatorId id = global_.front();
        global_.pop_front();
        return id;
      })) {
    return id;
  }
  // 3. Steal the oldest entry from another worker's bag.
  for (std::size_t i = 0; i < worker_order_.size(); ++i) {
    steal_cursor_ = (steal_cursor_ + 1) % worker_order_.size();
    WorkerId victim = worker_order_[steal_cursor_];
    if (victim == w) continue;
    std::vector<OperatorId>& bag = local_[victim];
    if (auto id = drain([&]() -> std::optional<OperatorId> {
          if (bag.empty()) return std::nullopt;
          OperatorId id = bag.front();
          bag.erase(bag.begin());
          return id;
        })) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<Message> OrleansScheduler::Dequeue(WorkerId w, SimTime now) {
  if (workers_.find(w) == workers_.end()) worker_order_.push_back(w);
  detail::WorkerSlot& slot = workers_[w];

  if (slot.has_current) {
    if (detail::OpState* q = FindRunnable(slot.current)) {
      bool cont = now - slot.quantum_start < config_.quantum;
      if (cont) {
        ++stats_.continuations;
        return Claim(*q);
      }
      if (!q->queued) {  // quantum expired: yield the turn to the global tail
        global_.push_back(slot.current);
        q->queued = true;
      }
    }
  }

  auto next = TakeFor(w);
  if (!next) {
    // Nothing anywhere else: resume the current operator if it still has
    // work (its yielded entry may be the only one and was claimed above).
    if (slot.has_current) {
      if (detail::OpState* q = FindRunnable(slot.current)) {
        slot.quantum_start = now;
        ++stats_.continuations;
        return Claim(*q);
      }
    }
    return std::nullopt;
  }
  detail::OpState& q = ops_[*next];
  if (slot.has_current && slot.current != *next) ++stats_.operator_swaps;
  slot.current = *next;
  slot.has_current = true;
  slot.quantum_start = now;
  return Claim(q);
}

void OrleansScheduler::OnComplete(OperatorId op, WorkerId w, SimTime /*now*/) {
  auto it = ops_.find(op);
  CAMEO_EXPECTS(it != ops_.end() && it->second.active);
  detail::OpState& q = it->second;
  q.active = false;
  if (!q.mailbox.empty() && !q.queued) {
    // Pending work stays near the worker that ran it (bag locality).
    local_[w].push_back(op);
    q.queued = true;
  }
}

}  // namespace cameo
