// Model of the default Orleans scheduler (paper §6): a global run queue
// backed by a ConcurrentBag, which "optimizes processing throughput by
// prioritizing processing thread-local tasks over the global ones".
//
// Behavioural model:
//  - work produced by an invocation on worker w lands in w's local bag,
//    consumed LIFO (ConcurrentBag's same-thread fast path);
//  - external arrivals land in the global FIFO queue;
//  - a worker takes local work first, then global, then steals the oldest
//    entry from another worker's bag;
//  - at quantum expiry the current operator yields to the *global* tail.
//
// This reproduces the depth-first, locality-chasing behaviour that gives
// Orleans good single-query cache locality (paper: IPQ4) but deadline-blind
// tail latency under multi-tenancy.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.h"

namespace cameo {

class OrleansScheduler final : public Scheduler {
 public:
  explicit OrleansScheduler(SchedulerConfig config = {});

  void Enqueue(Message m, WorkerId producer, SimTime now) override;
  std::optional<Message> Dequeue(WorkerId w, SimTime now) override;
  void OnComplete(OperatorId op, WorkerId w, SimTime now) override;

  std::size_t pending() const override { return pending_; }
  std::string name() const override { return "Orleans"; }

 private:
  detail::OpState* FindRunnable(OperatorId id);
  std::optional<OperatorId> TakeFor(WorkerId w);
  Message Claim(detail::OpState& q);

  std::unordered_map<OperatorId, detail::OpState> ops_;
  std::unordered_map<WorkerId, std::vector<OperatorId>> local_;  // LIFO bags
  std::deque<OperatorId> global_;                                // FIFO
  std::vector<WorkerId> worker_order_;  // registration order, for stealing
  std::unordered_map<WorkerId, detail::WorkerSlot> workers_;
  std::size_t pending_ = 0;
  std::size_t steal_cursor_ = 0;
};

}  // namespace cameo
