// Model of the default Orleans scheduler (paper §6): a global run queue
// backed by a ConcurrentBag, which "optimizes processing throughput by
// prioritizing processing thread-local tasks over the global ones".
//
// Behavioural model:
//  - work produced by an invocation on worker w lands in w's local bag,
//    consumed LIFO (ConcurrentBag's same-thread fast path);
//  - external arrivals land in the global FIFO queue;
//  - a worker takes local work first, then global, then steals the oldest
//    entry from another worker's bag;
//  - at quantum expiry the current operator yields to the *global* tail.
//
// This reproduces the depth-first, locality-chasing behaviour that gives
// Orleans good single-query cache locality (paper: IPQ4) but deadline-blind
// tail latency under multi-tenancy. Built on the sharded control plane:
// lock-free mailboxes + OrleansReadyState (bags/global/steal) under its own
// small lock.
#pragma once

#include "sched/mailbox.h"
#include "sched/ready_queue.h"
#include "sched/scheduler.h"

namespace cameo {

class OrleansScheduler final : public Scheduler {
 public:
  explicit OrleansScheduler(SchedulerConfig config = {});

  void Enqueue(Message m, WorkerId producer, SimTime now) override;
  std::size_t DequeueBatch(WorkerId w, SimTime now, std::size_t max_messages,
                           std::vector<Message>& out) override;
  using Scheduler::DequeueBatch;
  void OnComplete(OperatorId op, WorkerId w, SimTime now) override;

  std::string name() const override { return "Orleans"; }

  /// Worker shrink: flushes exiting workers' bags to the global queue (call
  /// after those workers have stopped) so their work stays reachable.
  void SetWorkerTarget(int num_workers) override {
    ready_.FlushBagsBeyond(num_workers);
  }

 protected:
  void PurgeReady(const std::vector<OperatorId>& ops) override;

 private:
  /// Releases a claimed mailbox; remaining work goes to worker `w`'s bag
  /// (bag locality) or, when `to_global` is set, to the global tail.
  void Release(OperatorId op, Mailbox& mb, WorkerId w, bool to_global);
  std::size_t Dispatch(Mailbox& mb, WorkerId w, std::size_t max,
                       std::vector<Message>& out);

  OrleansReadyState ready_;
};

}  // namespace cameo
