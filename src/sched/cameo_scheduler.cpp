#include "sched/cameo_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace cameo {

namespace {
// Saturating add keeps enqueue_time + starvation_limit from overflowing when
// the guard is disabled (limit = kTimeMax).
SimTime SatAdd(SimTime a, Duration b) {
  if (a > 0 && b > kTimeMax - a) return kTimeMax;
  return a + b;
}
}  // namespace

CameoScheduler::CameoScheduler(SchedulerConfig config) : Scheduler(config) {}

Priority CameoScheduler::EffectivePri(const Message& m) const {
  Priority pri = m.pc.pri_global;
  if (config_.starvation_limit != kTimeMax) {
    pri = std::min(pri, SatAdd(m.enqueue_time, config_.starvation_limit));
  }
  return pri;
}

bool CameoScheduler::StillQueued(OperatorId op, std::uint64_t epoch) const {
  Mailbox* mb = table_.Find(op);
  return mb != nullptr && mb->InQueuedSession(epoch);
}

void CameoScheduler::Release(OperatorId op, Mailbox& mb) {
  ReleaseMailbox(
      mb,
      [this](Mailbox& m) {  // owner-side: safe to peek the buffer
        ReadyKey key = KeyFor(m.PeekBest());
        m.set_registered_pri(key.pri);
        return key;
      },
      [this, op](ReadyKey key, std::uint64_t epoch) {
        ready_.Push(key, op, epoch);
      });
}

std::optional<Message> CameoScheduler::Dispatch(Mailbox& mb, WorkerId w) {
  pending_.fetch_sub(1, std::memory_order_relaxed);
  shards_.dispatched.Inc(shard_of(w));
  return mb.PopBest();
}

void CameoScheduler::Enqueue(Message m, WorkerId producer, SimTime now) {
  m.enqueue_time = now;
  const OperatorId op = m.target;
  const ReadyKey key = KeyFor(m);
  Mailbox& mb = table_.Get(op);
  mb.Push(std::move(m));
  pending_.fetch_add(1, std::memory_order_relaxed);
  shards_.enqueued.Inc(shard_of(producer));
  for (;;) {
    switch (mb.state()) {
      case Mailbox::State::kActive:
        return;  // the owner's release re-check will pick the message up
      case Mailbox::State::kQueued: {
        // Touch the ReadyQueue only when this arrival strictly improves the
        // operator's registered priority (paper: "head may have changed").
        auto epoch = mb.QueuedEpoch();
        if (!epoch.has_value()) break;  // session moved; re-read the state
        if (mb.TryLowerRegisteredPri(key.pri)) {
          // A raced-away epoch only strands a stale entry; the message
          // itself is covered by the owner's release re-queue.
          ready_.Push(key, op, *epoch);
        }
        return;
      }
      case Mailbox::State::kIdle: {
        std::uint64_t epoch = 0;
        if (mb.TryMarkQueued(epoch)) {
          mb.set_registered_pri(key.pri);
          ready_.Push(key, op, epoch);
          return;
        }
        break;  // lost the transition race; re-read the state
      }
    }
  }
}

std::optional<Message> CameoScheduler::Dequeue(WorkerId w, SimTime now) {
  WorkerSlot& sl = slot(w);

  // Continuation: keep draining the current operator within the quantum, or
  // past it when no strictly higher-priority operator waits (paper §5.2).
  if (sl.has_current) {
    Mailbox* mb = table_.Find(sl.current);
    if (mb != nullptr && mb->size() > 0 && mb->TryClaim()) {
      mb->set_registered_pri(kPriorityFloor);
      mb->DrainInbox();
      if (mb->buffer_empty()) {
        Release(sl.current, *mb);  // raced with a competing claim
      } else {
        bool cont = now - sl.quantum_start < config_.quantum;
        if (!cont) {
          const ReadyKey head = KeyFor(mb->PeekBest());
          auto top = ready_.CleanTopKey([this](OperatorId id,
                                               std::uint64_t epoch) {
            return StillQueued(id, epoch);
          });
          cont = !top.has_value() || !(*top < head);
          if (cont) sl.quantum_start = now;  // start a fresh quantum
        }
        if (cont) {
          shards_.continuations.Inc(shard_of(w));
          return Dispatch(*mb, w);
        }
        Release(sl.current, *mb);  // yield: back into the ready queue
      }
    }
  }

  // Dispatch the most urgent runnable operator; stale entries fail the
  // kQueued -> kActive claim and are skipped (lazy deletion).
  while (auto e = ready_.Pop()) {
    Mailbox* mb = table_.Find(e->op);
    if (mb == nullptr || !mb->TryClaimQueued(e->epoch)) continue;
    mb->set_registered_pri(kPriorityFloor);
    mb->DrainInbox();
    if (mb->buffer_empty()) {  // defensive: should not happen (see Release)
      Release(e->op, *mb);
      continue;
    }
    if (sl.has_current && sl.current != e->op) {
      shards_.operator_swaps.Inc(shard_of(w));
    }
    sl.current = e->op;
    sl.has_current = true;
    sl.quantum_start = now;
    return Dispatch(*mb, w);
  }
  return std::nullopt;
}

void CameoScheduler::OnComplete(OperatorId op, WorkerId /*w*/,
                                SimTime /*now*/) {
  Mailbox* mb = table_.Find(op);
  CAMEO_EXPECTS(mb != nullptr && mb->state() == Mailbox::State::kActive);
  Release(op, *mb);
}

std::optional<Priority> CameoScheduler::TopPriority() {
  auto top = ready_.CleanTopKey([this](OperatorId id, std::uint64_t epoch) {
    return StillQueued(id, epoch);
  });
  if (!top.has_value()) return std::nullopt;
  return top->pri;
}

}  // namespace cameo
