#include "sched/cameo_scheduler.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace cameo {

namespace {
// Saturating add keeps enqueue_time + starvation_limit from overflowing when
// the guard is disabled (limit = kTimeMax).
SimTime SatAdd(SimTime a, Duration b) {
  if (a > 0 && b > kTimeMax - a) return kTimeMax;
  return a + b;
}
}  // namespace

CameoScheduler::CameoScheduler(SchedulerConfig config)
    : Scheduler(config, MailboxOrder::kLocalPriority) {}

Priority CameoScheduler::EffectivePri(const Message& m) const {
  Priority pri = m.pc.pri_global;
  if (config_.starvation_limit != kTimeMax) {
    pri = std::min(pri, SatAdd(m.enqueue_time, config_.starvation_limit));
  }
  return pri;
}

bool CameoScheduler::StillQueued(OperatorId op, std::uint64_t epoch) const {
  Mailbox* mb = table_.Find(op);
  return mb != nullptr && mb->InQueuedSession(epoch);
}

void CameoScheduler::Release(OperatorId op, Mailbox& mb, WorkerId w) {
  if (mb.retiring()) {
    FinishRetire(mb, w);
    return;
  }
  ReleaseMailbox(
      mb,
      [this](Mailbox& m) {  // owner-side: safe to peek the buffer
        ReadyKey key = KeyFor(m.PeekBest());
        m.set_registered_pri(key.pri);
        return key;
      },
      [this, op](ReadyKey key, std::uint64_t epoch) {
        ready_.Push(key, op, epoch);
      });
  // A retire that raced the release: whoever can still claim the mailbox
  // finishes the purge (see scheduler.h retire protocol).
  if (mb.retiring() && mb.TryClaim()) FinishRetire(mb, w);
}

void CameoScheduler::PurgeReady(const std::vector<OperatorId>& ops) {
  ready_.EraseOps(std::unordered_set<OperatorId>(ops.begin(), ops.end()));
}

std::size_t CameoScheduler::Dispatch(Mailbox& mb, WorkerId w, std::size_t max,
                                     std::vector<Message>& out) {
  // The ready-queue head is re-fetched before *every* message after the
  // first, so an urgent arrival mid-batch bounds its wait at one message,
  // not batch_size. CleanTopKey is one small-lock peek; like the quantum
  // yield check the result is advisory (the head can move the instant the
  // lock drops), but the drain never runs past a head it has seen.
  return DrainClaimed(mb, w, max, out, [this](Mailbox& m) {
    auto top = ready_.CleanTopKey([this](OperatorId id, std::uint64_t epoch) {
      return StillQueued(id, epoch);
    });
    return !top.has_value() || !(*top < KeyFor(m.PeekBest()));
  });
}

void CameoScheduler::Enqueue(Message m, WorkerId producer, SimTime now) {
  m.enqueue_time = now;
  const OperatorId op = m.target;
  const ReadyKey key = KeyFor(m);
  Mailbox& mb = table_.Get(op);
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (!mb.Push(std::move(m))) {  // operator retired: reject, with accounting
    pending_.fetch_sub(1, std::memory_order_relaxed);
    shards_.rejected.Inc(shard_of(producer));
    return;
  }
  shards_.enqueued.Inc(shard_of(producer));
  for (;;) {
    switch (mb.state()) {
      case Mailbox::State::kActive:
        return;  // the owner's release re-check will pick the message up
      case Mailbox::State::kRetired:
        // Retirement finished after our push slipped past the flag; purge
        // the stragglers back out.
        DiscardIntoRetired(mb, producer);
        return;
      case Mailbox::State::kQueued: {
        // Touch the ReadyQueue only when this arrival strictly improves the
        // operator's registered priority (paper: "head may have changed").
        auto epoch = mb.QueuedEpoch();
        if (!epoch.has_value()) break;  // session moved; re-read the state
        if (mb.TryLowerRegisteredPri(key.pri)) {
          // A raced-away epoch only strands a stale entry; the message
          // itself is covered by the owner's release re-queue.
          ready_.Push(key, op, *epoch);
        }
        return;
      }
      case Mailbox::State::kIdle: {
        std::uint64_t epoch = 0;
        if (mb.TryMarkQueued(epoch)) {
          mb.set_registered_pri(key.pri);
          ready_.Push(key, op, epoch);
          return;
        }
        break;  // lost the transition race; re-read the state
      }
    }
  }
}

std::size_t CameoScheduler::DequeueBatch(WorkerId w, SimTime now,
                                         std::size_t max_messages,
                                         std::vector<Message>& out) {
  WorkerSlot& sl = slot(w);

  // Continuation: keep draining the current operator within the quantum, or
  // past it when no strictly higher-priority operator waits (paper §5.2).
  if (sl.has_current) {
    Mailbox* mb = table_.Find(sl.current);
    if (mb != nullptr && mb->size() > 0 && mb->TryClaim()) {
      if (mb->retiring()) {  // current operator's query was removed
        FinishRetire(*mb, w);
        sl.has_current = false;
      } else {
        mb->set_registered_pri(kPriorityFloor);
        mb->DrainInbox();
        if (mb->buffer_empty()) {
          Release(sl.current, *mb, w);  // raced with a competing claim
        } else {
          bool cont = now - sl.quantum_start < config_.quantum;
          if (!cont) {
            const ReadyKey head = KeyFor(mb->PeekBest());
            auto top = ready_.CleanTopKey([this](OperatorId id,
                                                 std::uint64_t epoch) {
              return StillQueued(id, epoch);
            });
            cont = !top.has_value() || !(*top < head);
            if (cont) sl.quantum_start = now;  // start a fresh quantum
          }
          if (cont) {
            shards_.continuations.Inc(shard_of(w));
            return Dispatch(*mb, w, max_messages, out);
          }
          Release(sl.current, *mb, w);  // yield: back into the ready queue
        }
      }
    }
  }

  // Dispatch the most urgent runnable operator; stale entries fail the
  // kQueued -> kActive claim and are skipped (lazy deletion).
  while (auto e = ready_.Pop()) {
    Mailbox* mb = table_.Find(e->op);
    if (mb == nullptr || !mb->TryClaimQueued(e->epoch)) continue;
    if (mb->retiring()) {  // removed id: discard its backlog, never dispatch
      FinishRetire(*mb, w);
      continue;
    }
    mb->set_registered_pri(kPriorityFloor);
    mb->DrainInbox();
    if (mb->buffer_empty()) {  // defensive: should not happen (see Release)
      Release(e->op, *mb, w);
      continue;
    }
    if (sl.has_current && sl.current != e->op) {
      shards_.operator_swaps.Inc(shard_of(w));
    }
    sl.current = e->op;
    sl.has_current = true;
    sl.quantum_start = now;
    return Dispatch(*mb, w, max_messages, out);
  }
  return 0;
}

void CameoScheduler::OnComplete(OperatorId op, WorkerId w, SimTime /*now*/) {
  Mailbox* mb = table_.Find(op);
  CAMEO_EXPECTS(mb != nullptr && mb->state() == Mailbox::State::kActive);
  Release(op, *mb, w);
}

std::optional<Priority> CameoScheduler::TopPriority() {
  auto top = ready_.CleanTopKey([this](OperatorId id, std::uint64_t epoch) {
    return StillQueued(id, epoch);
  });
  if (!top.has_value()) return std::nullopt;
  return top->pri;
}

}  // namespace cameo
