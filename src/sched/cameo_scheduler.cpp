#include "sched/cameo_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace cameo {

namespace {
// Saturating add keeps enqueue_time + starvation_limit from overflowing when
// the guard is disabled (limit = kTimeMax).
SimTime SatAdd(SimTime a, Duration b) {
  if (a > 0 && b > kTimeMax - a) return kTimeMax;
  return a + b;
}
}  // namespace

CameoScheduler::CameoScheduler(SchedulerConfig config) : Scheduler(config) {}

CameoScheduler::GlobalKey CameoScheduler::HeadKey(const OpQueue& q) const {
  CAMEO_EXPECTS(!q.mailbox.empty());
  const auto& [key, msg] = *q.mailbox.begin();
  Priority pri = msg.pc.pri_global;
  if (config_.starvation_limit != kTimeMax) {
    pri = std::min(pri, SatAdd(msg.enqueue_time, config_.starvation_limit));
  }
  return GlobalKey{pri, key.second};
}

Message CameoScheduler::PopHead(OpQueue& q) {
  CAMEO_EXPECTS(!q.mailbox.empty());
  auto node = q.mailbox.extract(q.mailbox.begin());
  return std::move(node.mapped());
}

void CameoScheduler::PushRunnable(OperatorId id, OpQueue& q) {
  CAMEO_EXPECTS(!q.queued && !q.active && !q.mailbox.empty());
  q.handle = run_queue_.Push(HeadKey(q), id);
  q.queued = true;
}

void CameoScheduler::RemoveFromRunQueue(OpQueue& q) {
  if (q.queued) {
    run_queue_.Erase(q.handle);
    q.queued = false;
  }
}

void CameoScheduler::Enqueue(Message m, WorkerId /*producer*/, SimTime now) {
  m.enqueue_time = now;
  OpQueue& q = ops_[m.target];
  LocalKey key{m.pc.pri_local, m.id.value};
  q.mailbox.emplace(key, std::move(m));
  ++pending_;
  ++stats_.enqueued;
  if (q.active) return;  // will be reconsidered at OnComplete
  if (q.queued) {
    run_queue_.Update(q.handle, HeadKey(q));  // head may have changed
  } else {
    OperatorId id = q.mailbox.begin()->second.target;
    PushRunnable(id, q);
  }
}

std::optional<Message> CameoScheduler::Dequeue(WorkerId w, SimTime now) {
  detail::WorkerSlot& slot = workers_[w];

  // Continuation: keep draining the current operator within the quantum, or
  // past it when no strictly higher-priority operator waits (paper §5.2).
  if (slot.has_current) {
    auto it = ops_.find(slot.current);
    if (it != ops_.end() && !it->second.active && !it->second.mailbox.empty()) {
      OpQueue& q = it->second;
      bool cont = now - slot.quantum_start < config_.quantum;
      if (!cont) {
        RemoveFromRunQueue(q);
        cont = run_queue_.empty() || !(run_queue_.TopKey() < HeadKey(q));
        if (cont) slot.quantum_start = now;  // start a fresh quantum
      }
      if (cont) {
        RemoveFromRunQueue(q);
        q.active = true;
        --pending_;
        ++stats_.dispatched;
        ++stats_.continuations;
        return PopHead(q);
      }
      PushRunnable(slot.current, q);  // yield: back into the run queue
    }
  }

  if (run_queue_.empty()) return std::nullopt;
  auto [key, id] = run_queue_.Pop();
  OpQueue& q = ops_[id];
  q.queued = false;
  q.active = true;
  if (slot.has_current && slot.current != id) ++stats_.operator_swaps;
  slot.current = id;
  slot.has_current = true;
  slot.quantum_start = now;
  --pending_;
  ++stats_.dispatched;
  return PopHead(q);
}

void CameoScheduler::OnComplete(OperatorId op, WorkerId /*w*/,
                                SimTime /*now*/) {
  auto it = ops_.find(op);
  CAMEO_EXPECTS(it != ops_.end() && it->second.active);
  OpQueue& q = it->second;
  q.active = false;
  // Make remaining work visible to every worker; the completing worker's
  // continuation path will pull it back out if it keeps the operator.
  if (!q.mailbox.empty() && !q.queued) PushRunnable(op, q);
}

std::optional<Priority> CameoScheduler::TopPriority() const {
  if (run_queue_.empty()) return std::nullopt;
  return run_queue_.TopKey().pri;
}

}  // namespace cameo
