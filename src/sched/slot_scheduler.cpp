#include "sched/slot_scheduler.h"

#include "common/check.h"

namespace cameo {

SlotScheduler::SlotScheduler(int num_workers, SchedulerConfig config)
    : Scheduler(config), num_workers_(num_workers) {
  CAMEO_EXPECTS(num_workers >= 1);
}

void SlotScheduler::Assign(OperatorId op, WorkerId worker) {
  CAMEO_EXPECTS(worker.valid() && worker.value < num_workers_);
  assignment_[op] = worker;
}

WorkerId SlotScheduler::SlotOf(OperatorId op) {
  auto it = assignment_.find(op);
  if (it != assignment_.end()) return it->second;
  WorkerId w{next_slot_ % num_workers_};
  ++next_slot_;
  assignment_[op] = w;
  return w;
}

void SlotScheduler::Enqueue(Message m, WorkerId /*producer*/, SimTime now) {
  m.enqueue_time = now;
  detail::OpState& q = ops_[m.target];
  OperatorId id = m.target;
  q.mailbox.push_back(std::move(m));
  ++pending_;
  ++stats_.enqueued;
  if (!q.active && !q.queued) {
    run_queues_[SlotOf(id)].push_back(id);
    q.queued = true;
  }
}

detail::OpState* SlotScheduler::FindRunnable(OperatorId id) {
  auto it = ops_.find(id);
  if (it == ops_.end()) return nullptr;
  detail::OpState& q = it->second;
  if (q.active || q.mailbox.empty()) return nullptr;
  return &q;
}

std::optional<Message> SlotScheduler::Dequeue(WorkerId w, SimTime now) {
  detail::WorkerSlot& slot = workers_[w];
  std::deque<OperatorId>& queue = run_queues_[w];

  if (slot.has_current) {
    if (detail::OpState* q = FindRunnable(slot.current)) {
      bool cont = now - slot.quantum_start < config_.quantum;
      if (!cont && queue.empty()) {
        cont = true;
        slot.quantum_start = now;
      }
      if (cont) {
        q->queued = false;
        q->active = true;
        Message m = std::move(q->mailbox.front());
        q->mailbox.pop_front();
        --pending_;
        ++stats_.dispatched;
        ++stats_.continuations;
        return m;
      }
      if (!q->queued) {
        queue.push_back(slot.current);
        q->queued = true;
      }
    }
  }

  while (!queue.empty()) {
    OperatorId id = queue.front();
    queue.pop_front();
    auto it = ops_.find(id);
    if (it == ops_.end() || !it->second.queued) continue;  // stale
    it->second.queued = false;
    if (it->second.active || it->second.mailbox.empty()) continue;
    detail::OpState& q = it->second;
    q.active = true;
    if (slot.has_current && slot.current != id) ++stats_.operator_swaps;
    slot.current = id;
    slot.has_current = true;
    slot.quantum_start = now;
    Message m = std::move(q.mailbox.front());
    q.mailbox.pop_front();
    --pending_;
    ++stats_.dispatched;
    return m;
  }
  return std::nullopt;
}

void SlotScheduler::OnComplete(OperatorId op, WorkerId /*w*/, SimTime /*now*/) {
  auto it = ops_.find(op);
  CAMEO_EXPECTS(it != ops_.end() && it->second.active);
  detail::OpState& q = it->second;
  q.active = false;
  if (!q.mailbox.empty() && !q.queued) {
    run_queues_[SlotOf(op)].push_back(op);
    q.queued = true;
  }
}

}  // namespace cameo
