#include "sched/slot_scheduler.h"

#include <unordered_set>

#include "common/check.h"

namespace cameo {

SlotScheduler::SlotScheduler(int num_workers, SchedulerConfig config)
    : Scheduler(config, MailboxOrder::kFifo), num_workers_(num_workers) {
  CAMEO_EXPECTS(num_workers >= 1);
}

void SlotScheduler::Assign(OperatorId op, WorkerId worker) {
  std::lock_guard lock(assign_mu_);
  CAMEO_EXPECTS(worker.valid() && worker.value < num_workers_);
  assignment_[op] = worker;
}

WorkerId SlotScheduler::SlotOf(OperatorId op) {
  std::lock_guard lock(assign_mu_);
  auto it = assignment_.find(op);
  if (it != assignment_.end()) return it->second;
  WorkerId w{next_slot_ % num_workers_};
  ++next_slot_;
  assignment_[op] = w;
  return w;
}

void SlotScheduler::SetWorkerTarget(int num_workers) {
  CAMEO_EXPECTS(num_workers >= 1);
  {
    std::lock_guard lock(assign_mu_);
    num_workers_ = num_workers;
    // Re-pin stranded operators round-robin over the surviving slots.
    for (auto& [op, w] : assignment_) {
      if (w.value >= num_workers) {
        w = WorkerId{next_slot_ % num_workers};
        ++next_slot_;
      }
    }
  }
  // Ready entries parked on removed slots follow their operator's new pin.
  // Stale entries (their queued session already over) are re-pushed too;
  // they fail the epoch claim on pop, exactly like any lazy-deleted entry.
  for (const ReadyEntry& e : ready_.DrainSlotsBeyond(num_workers)) {
    ready_.Push(SlotOf(e.op), e.op, e.epoch);
  }
}

void SlotScheduler::PurgeReady(const std::vector<OperatorId>& ops) {
  ready_.EraseOps(std::unordered_set<OperatorId>(ops.begin(), ops.end()));
}

void SlotScheduler::Release(OperatorId op, Mailbox& mb, WorkerId w) {
  if (mb.retiring()) {
    FinishRetire(mb, w);
    return;
  }
  ReleaseMailbox(
      mb, [](Mailbox&) { return 0; },
      [this, op](int, std::uint64_t epoch) {
        ready_.Push(SlotOf(op), op, epoch);
      });
  if (mb.retiring() && mb.TryClaim()) FinishRetire(mb, w);
}

std::size_t SlotScheduler::Dispatch(Mailbox& mb, WorkerId w, std::size_t max,
                                    std::vector<Message>& out) {
  // Within a slot operators run FIFO; the batch is simply the claimed
  // operator's next `max` messages.
  return DrainClaimed(mb, w, max, out, [](Mailbox&) { return true; });
}

void SlotScheduler::Enqueue(Message m, WorkerId producer, SimTime now) {
  m.enqueue_time = now;
  const OperatorId op = m.target;
  Mailbox& mb = table_.Get(op);
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (!mb.Push(std::move(m))) {  // operator retired: reject, with accounting
    pending_.fetch_sub(1, std::memory_order_relaxed);
    shards_.rejected.Inc(shard_of(producer));
    return;
  }
  shards_.enqueued.Inc(shard_of(producer));
  for (;;) {
    Mailbox::State s = mb.state();
    if (s == Mailbox::State::kRetired) {
      DiscardIntoRetired(mb, producer);
      return;
    }
    if (s != Mailbox::State::kIdle) return;
    std::uint64_t epoch = 0;
    if (mb.TryMarkQueued(epoch)) {
      ready_.Push(SlotOf(op), op, epoch);
      return;
    }
  }
}

std::size_t SlotScheduler::DequeueBatch(WorkerId w, SimTime now,
                                        std::size_t max_messages,
                                        std::vector<Message>& out) {
  WorkerSlot& sl = slot(w);

  if (sl.has_current) {
    Mailbox* mb = table_.Find(sl.current);
    if (mb != nullptr && mb->size() > 0 && mb->TryClaim()) {
      if (mb->retiring()) {  // current operator's query was removed
        FinishRetire(*mb, w);
        sl.has_current = false;
      } else {
        mb->DrainInbox();
        if (mb->buffer_empty()) {
          Release(sl.current, *mb, w);
        } else {
          bool cont = now - sl.quantum_start < config_.quantum;
          if (!cont && ready_.empty(w)) {
            cont = true;  // the slot has nothing else: keep going
            sl.quantum_start = now;
          }
          if (cont) {
            shards_.continuations.Inc(shard_of(w));
            return Dispatch(*mb, w, max_messages, out);
          }
          Release(sl.current, *mb, w);  // rotate within the slot
        }
      }
    }
  }

  while (auto e = ready_.Pop(w)) {
    Mailbox* mb = table_.Find(e->op);
    if (mb == nullptr || !mb->TryClaimQueued(e->epoch)) continue;  // stale
    if (mb->retiring()) {  // removed id: discard its backlog, never dispatch
      FinishRetire(*mb, w);
      continue;
    }
    mb->DrainInbox();
    if (mb->buffer_empty()) {  // defensive: kQueued implies pending work
      Release(e->op, *mb, w);
      continue;
    }
    if (sl.has_current && sl.current != e->op) {
      shards_.operator_swaps.Inc(shard_of(w));
    }
    sl.current = e->op;
    sl.has_current = true;
    sl.quantum_start = now;
    return Dispatch(*mb, w, max_messages, out);
  }
  return 0;
}

void SlotScheduler::OnComplete(OperatorId op, WorkerId w, SimTime /*now*/) {
  Mailbox* mb = table_.Find(op);
  CAMEO_EXPECTS(mb != nullptr && mb->state() == Mailbox::State::kActive);
  Release(op, *mb, w);
}

}  // namespace cameo
