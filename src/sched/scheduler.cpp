#include "sched/scheduler.h"

#include "sched/cameo_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "sched/orleans_scheduler.h"
#include "sched/slot_scheduler.h"

namespace cameo {

std::string ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kCameo:
      return "Cameo";
    case SchedulerKind::kFifo:
      return "FIFO";
    case SchedulerKind::kOrleans:
      return "Orleans";
    case SchedulerKind::kSlot:
      return "Slot";
  }
  return "?";
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind, int num_workers,
                                         const SchedulerConfig& config) {
  switch (kind) {
    case SchedulerKind::kCameo:
      return std::make_unique<CameoScheduler>(config);
    case SchedulerKind::kFifo:
      return std::make_unique<FifoScheduler>(config);
    case SchedulerKind::kOrleans:
      return std::make_unique<OrleansScheduler>(config);
    case SchedulerKind::kSlot:
      return std::make_unique<SlotScheduler>(num_workers, config);
  }
  CAMEO_CHECK(false && "unknown scheduler kind");
  return nullptr;
}

}  // namespace cameo
