#include "sched/scheduler.h"

#include "sched/cameo_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "sched/orleans_scheduler.h"
#include "sched/slot_scheduler.h"

namespace cameo {

std::optional<Message> Scheduler::Dequeue(WorkerId w, SimTime now) {
  // Scratch survives across calls so the single-message path stays
  // allocation-free too.
  static thread_local std::vector<Message> scratch;
  scratch.clear();
  if (DequeueBatch(w, now, 1, scratch) == 0) return std::nullopt;
  return std::move(scratch.front());
}

std::int64_t Scheduler::RetireOperators(const std::vector<OperatorId>& ops) {
  std::int64_t purged = 0;
  for (OperatorId op : ops) {
    // Get (not Find): an operator never enqueued to still gets a mailbox so
    // its id can never be resurrected by a late first message.
    Mailbox& mb = table_.Get(op);
    mb.BeginRetire();
    for (;;) {
      Mailbox::State s = mb.state();
      if (s == Mailbox::State::kActive) break;  // owner's release finishes it
      if (s == Mailbox::State::kRetired) {
        if (mb.size() == 0) break;
        if (!mb.TryReclaimRetired()) continue;  // racing purger; re-read
      } else if (!mb.TryClaim()) {
        continue;  // lost a kIdle/kQueued transition race; re-read
      }
      purged += FinishRetire(mb, WorkerId{});
      break;
    }
  }
  PurgeReady(ops);
  return purged;
}

std::string ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kCameo:
      return "Cameo";
    case SchedulerKind::kFifo:
      return "FIFO";
    case SchedulerKind::kOrleans:
      return "Orleans";
    case SchedulerKind::kSlot:
      return "Slot";
  }
  return "?";
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind, int num_workers,
                                         const SchedulerConfig& config) {
  switch (kind) {
    case SchedulerKind::kCameo:
      return std::make_unique<CameoScheduler>(config);
    case SchedulerKind::kFifo:
      return std::make_unique<FifoScheduler>(config);
    case SchedulerKind::kOrleans:
      return std::make_unique<OrleansScheduler>(config);
    case SchedulerKind::kSlot:
      return std::make_unique<SlotScheduler>(num_workers, config);
  }
  CAMEO_CHECK(false && "unknown scheduler kind");
  return nullptr;
}

}  // namespace cameo
