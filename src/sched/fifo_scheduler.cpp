#include "sched/fifo_scheduler.h"

#include "common/check.h"

namespace cameo {

FifoScheduler::FifoScheduler(SchedulerConfig config) : Scheduler(config) {}

void FifoScheduler::Enqueue(Message m, WorkerId /*producer*/, SimTime now) {
  m.enqueue_time = now;
  detail::OpState& q = ops_[m.target];
  OperatorId id = m.target;
  q.mailbox.push_back(std::move(m));
  ++pending_;
  ++stats_.enqueued;
  if (!q.active && !q.queued) {
    run_queue_.push_back(id);
    q.queued = true;
  }
}

detail::OpState* FifoScheduler::FindRunnable(OperatorId id) {
  auto it = ops_.find(id);
  if (it == ops_.end()) return nullptr;
  detail::OpState& q = it->second;
  if (q.active || q.mailbox.empty()) return nullptr;
  return &q;
}

std::optional<OperatorId> FifoScheduler::PopRunnable() {
  while (!run_queue_.empty()) {
    OperatorId id = run_queue_.front();
    run_queue_.pop_front();
    auto it = ops_.find(id);
    if (it == ops_.end() || !it->second.queued) continue;  // stale entry
    it->second.queued = false;
    if (it->second.active || it->second.mailbox.empty()) continue;
    return id;
  }
  return std::nullopt;
}

std::optional<Message> FifoScheduler::Dequeue(WorkerId w, SimTime now) {
  detail::WorkerSlot& slot = workers_[w];

  if (slot.has_current) {
    if (detail::OpState* q = FindRunnable(slot.current)) {
      bool cont = now - slot.quantum_start < config_.quantum;
      if (!cont && run_queue_.empty()) {
        cont = true;  // nothing else to run: keep going, fresh quantum
        slot.quantum_start = now;
      }
      if (cont) {
        q->queued = false;  // claim it; any run-queue entry becomes stale
        q->active = true;
        Message m = std::move(q->mailbox.front());
        q->mailbox.pop_front();
        --pending_;
        ++stats_.dispatched;
        ++stats_.continuations;
        return m;
      }
      if (!q->queued) {  // quantum expired: rotate to the tail
        run_queue_.push_back(slot.current);
        q->queued = true;
      }
    }
  }

  auto next = PopRunnable();
  if (!next) return std::nullopt;
  detail::OpState& q = ops_[*next];
  q.active = true;
  if (slot.has_current && slot.current != *next) ++stats_.operator_swaps;
  slot.current = *next;
  slot.has_current = true;
  slot.quantum_start = now;
  Message m = std::move(q.mailbox.front());
  q.mailbox.pop_front();
  --pending_;
  ++stats_.dispatched;
  return m;
}

void FifoScheduler::OnComplete(OperatorId op, WorkerId /*w*/, SimTime /*now*/) {
  auto it = ops_.find(op);
  CAMEO_EXPECTS(it != ops_.end() && it->second.active);
  detail::OpState& q = it->second;
  q.active = false;
  if (!q.mailbox.empty() && !q.queued) {
    run_queue_.push_back(op);
    q.queued = true;
  }
}

}  // namespace cameo
