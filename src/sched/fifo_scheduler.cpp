#include "sched/fifo_scheduler.h"

#include <unordered_set>

#include "common/check.h"

namespace cameo {

FifoScheduler::FifoScheduler(SchedulerConfig config)
    : Scheduler(config, MailboxOrder::kFifo) {}

void FifoScheduler::Release(OperatorId op, Mailbox& mb, WorkerId w) {
  if (mb.retiring()) {
    FinishRetire(mb, w);
    return;
  }
  ReleaseMailbox(
      mb, [](Mailbox&) { return 0; },
      [this, op](int, std::uint64_t epoch) { ready_.Push(op, epoch); });
  if (mb.retiring() && mb.TryClaim()) FinishRetire(mb, w);
}

void FifoScheduler::PurgeReady(const std::vector<OperatorId>& ops) {
  ready_.EraseOps(std::unordered_set<OperatorId>(ops.begin(), ops.end()));
}

std::size_t FifoScheduler::Dispatch(Mailbox& mb, WorkerId w, std::size_t max,
                                    std::vector<Message>& out) {
  // FIFO has no cross-operator urgency to re-check: the batch is simply the
  // next `max` messages of the claimed operator.
  return DrainClaimed(mb, w, max, out, [](Mailbox&) { return true; });
}

void FifoScheduler::Enqueue(Message m, WorkerId producer, SimTime now) {
  m.enqueue_time = now;
  const OperatorId op = m.target;
  Mailbox& mb = table_.Get(op);
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (!mb.Push(std::move(m))) {  // operator retired: reject, with accounting
    pending_.fetch_sub(1, std::memory_order_relaxed);
    shards_.rejected.Inc(shard_of(producer));
    return;
  }
  shards_.enqueued.Inc(shard_of(producer));
  for (;;) {
    Mailbox::State s = mb.state();
    if (s == Mailbox::State::kRetired) {
      DiscardIntoRetired(mb, producer);
      return;
    }
    if (s != Mailbox::State::kIdle) return;
    std::uint64_t epoch = 0;
    if (mb.TryMarkQueued(epoch)) {
      ready_.Push(op, epoch);
      return;
    }
  }
}

std::size_t FifoScheduler::DequeueBatch(WorkerId w, SimTime now,
                                        std::size_t max_messages,
                                        std::vector<Message>& out) {
  WorkerSlot& sl = slot(w);

  if (sl.has_current) {
    Mailbox* mb = table_.Find(sl.current);
    if (mb != nullptr && mb->size() > 0 && mb->TryClaim()) {
      if (mb->retiring()) {  // current operator's query was removed
        FinishRetire(*mb, w);
        sl.has_current = false;
      } else {
        mb->DrainInbox();
        if (mb->buffer_empty()) {
          Release(sl.current, *mb, w);
        } else {
          bool cont = now - sl.quantum_start < config_.quantum;
          if (!cont && ready_.empty()) {
            cont = true;  // nothing else to run: keep going, fresh quantum
            sl.quantum_start = now;
          }
          if (cont) {
            shards_.continuations.Inc(shard_of(w));
            return Dispatch(*mb, w, max_messages, out);
          }
          Release(sl.current, *mb, w);  // quantum expired: rotate to the tail
        }
      }
    }
  }

  while (auto e = ready_.Pop()) {
    Mailbox* mb = table_.Find(e->op);
    if (mb == nullptr || !mb->TryClaimQueued(e->epoch)) continue;  // stale
    if (mb->retiring()) {  // removed id: discard its backlog, never dispatch
      FinishRetire(*mb, w);
      continue;
    }
    mb->DrainInbox();
    if (mb->buffer_empty()) {  // defensive: kQueued implies pending work
      Release(e->op, *mb, w);
      continue;
    }
    if (sl.has_current && sl.current != e->op) {
      shards_.operator_swaps.Inc(shard_of(w));
    }
    sl.current = e->op;
    sl.has_current = true;
    sl.quantum_start = now;
    return Dispatch(*mb, w, max_messages, out);
  }
  return 0;
}

void FifoScheduler::OnComplete(OperatorId op, WorkerId w, SimTime /*now*/) {
  Mailbox* mb = table_.Find(op);
  CAMEO_EXPECTS(mb != nullptr && mb->state() == Mailbox::State::kActive);
  Release(op, *mb, w);
}

}  // namespace cameo
