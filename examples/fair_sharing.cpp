// Proportional fair sharing with tokens (paper §5.4, Fig. 6): three tenants
// are entitled to 20% / 40% / 40% of the cluster's ingestion capacity. They
// start 20 s apart and each offers far more load than its share. Cameo's
// TokenFair policy turns entitlements into throughput shares without any
// resource reservation.
#include <cstdio>

#include "bench_util/scenarios.h"

using namespace cameo;

int main() {
  TokenScenarioOptions opt;
  TokenScenarioResult result = RunTokenScenario(opt);

  std::printf("three tenants, token shares 20/40/40, staggered starts\n\n");
  std::printf("%-10s %12s %12s %12s\n", "t(s)", "tenant1", "tenant2",
              "tenant3");
  const std::size_t n = result.throughput[0].size();
  for (std::size_t b = 0; b + 20 <= n; b += 20) {
    double v[3] = {0, 0, 0};
    for (int j = 0; j < 3; ++j) {
      for (std::size_t i = b; i < b + 20; ++i) {
        v[j] += static_cast<double>(
            result.throughput[static_cast<std::size_t>(j)][i]);
      }
    }
    double total = v[0] + v[1] + v[2];
    if (total <= 0) continue;
    std::printf("%3zu-%-6zu %11.1f%% %11.1f%% %11.1f%%\n", b, b + 20,
                100 * v[0] / total, 100 * v[1] / total, 100 * v[2] / total);
  }
  std::printf("\ntenant 1 used the whole cluster while alone; once all three "
              "were active the shares\nconverged to the 20/40/40 "
              "entitlements (paper Fig. 6).\n");
  return 0;
}
