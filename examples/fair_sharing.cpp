// Proportional fair sharing with tokens (paper §5.4, Fig. 6): three tenants
// are entitled to 20% / 40% / 40% of the cluster's ingestion capacity. They
// start 20 s apart and each offers far more load than its share. With the
// frontend API the entitlement is one attribute of the query definition
// (`TokenRate`) -- Cameo's TokenFair policy turns it into a throughput share
// without any resource reservation.
#include <cstdio>
#include <string>
#include <vector>

#include "api/sim_engine.h"
#include "workload/tenants.h"

using namespace cameo;

int main() {
  constexpr SimTime kDuration = Seconds(100);
  constexpr SimTime kStagger = Seconds(20);
  const std::vector<double> token_rates = {12, 24, 24};  // 20% / 40% / 40%

  EngineOptions opt;
  opt.workers = 2;
  opt.scheduler = SchedulerKind::kCameo;
  opt.policy = "TokenFair";
  SimEngine engine(opt);

  std::vector<QueryHandle> tenants;
  for (std::size_t i = 0; i < token_rates.size(); ++i) {
    QuerySpec spec = MakeLatencySensitiveSpec("J" + std::to_string(i + 1));
    spec.sources = 2;
    spec.aggs = 2;
    spec.token_rate_per_sec = token_rates[i];
    spec.tuples_per_msg = 10000;  // heavy batches: tokened work saturates

    // Offered load far above the entitlement, starting i * 20 s in.
    IngestSpec ingest;
    ingest.aligned = false;
    ingest.msgs_per_sec = 60;
    ingest.tuples_per_msg = spec.tuples_per_msg;
    ingest.start = static_cast<SimTime>(i) * kStagger;
    ingest.end = kDuration;
    tenants.push_back(engine.Submit(AggregationQueryDef(spec).Ingest(ingest)));
  }

  engine.RunFor(kDuration);

  std::vector<std::vector<std::int64_t>> throughput;
  for (const QueryHandle& q : tenants) {
    throughput.push_back(engine.cluster().latency().ProcessedBuckets(
        q.job(), kSecond, kDuration));
  }

  std::printf("three tenants, token shares 20/40/40, staggered starts\n\n");
  std::printf("%-10s %12s %12s %12s\n", "t(s)", "tenant1", "tenant2",
              "tenant3");
  const std::size_t n = throughput[0].size();
  for (std::size_t b = 0; b + 20 <= n; b += 20) {
    double v[3] = {0, 0, 0};
    for (int j = 0; j < 3; ++j) {
      for (std::size_t i = b; i < b + 20; ++i) {
        v[j] += static_cast<double>(throughput[static_cast<std::size_t>(j)][i]);
      }
    }
    double total = v[0] + v[1] + v[2];
    if (total <= 0) continue;
    std::printf("%3zu-%-6zu %11.1f%% %11.1f%% %11.1f%%\n", b, b + 20,
                100 * v[0] / total, 100 * v[1] / total, 100 * v[2] / total);
  }
  std::printf("\ntenant 1 used the whole cluster while alone; once all three "
              "were active the shares\nconverged to the 20/40/40 "
              "entitlements (paper Fig. 6).\n");
  return 0;
}
