// Log error summarization: the paper's IPQ4 ("summarizes errors from log
// events via a windowed join of two event streams, followed by aggregation
// on a tumbling window"), with real columnar data on the thread runtime.
//
//   requests (srcL) --+
//                     +-- windowed join on request id (1 s windows)
//   errors   (srcR) --+        |
//                        tumbling count -> sink
//
// The join emits one tuple per (request, error) match; the final aggregation
// counts matches per window.
#include <cstdio>

#include "ops/sink.h"
#include "runtime/thread_runtime.h"
#include "workload/tenants.h"

using namespace cameo;

int main() {
  QuerySpec spec = MakeIpqSpec(4);
  spec.name = "log_errors";
  spec.sources = 2;  // per side
  spec.aggs = 1;     // single join shard keeps the arithmetic transparent
  spec.domain = TimeDomain::kEventTime;

  DataflowGraph graph;
  JobHandles job = BuildJoinJob(graph, spec);
  std::vector<OperatorId> requests = graph.stage(job.source).operators;
  std::vector<OperatorId> errors = graph.stage(job.source_right).operators;
  OperatorId sink_id = graph.stage(job.sink).operators[0];

  RuntimeConfig cfg;
  cfg.num_workers = 2;
  cfg.emulate_cost = false;
  ThreadRuntime runtime(cfg, std::move(graph));
  runtime.Start();

  // Two logical seconds of traffic. Requests 0..49 each second; errors for
  // every 5th request. Expected matches per closed window: 10.
  for (int second = 1; second <= 2; ++second) {
    for (std::size_t s = 0; s < requests.size(); ++s) {
      EventBatch req;
      req.progress = Seconds(second);
      for (int id = 0; id < 50; ++id) {
        if (static_cast<int>(s) != id % 2) continue;  // split across sources
        req.Append(/*key=*/id, /*value=*/1.0, Seconds(second) - Millis(10));
      }
      runtime.IngestBatch(requests[s], std::move(req));
    }
    for (std::size_t s = 0; s < errors.size(); ++s) {
      EventBatch err;
      err.progress = Seconds(second);
      for (int id = 0; id < 50; id += 5) {
        if (static_cast<int>(s) != id % 2) continue;
        err.Append(/*key=*/id, /*value=*/1.0, Seconds(second) - Millis(3));
      }
      runtime.IngestBatch(errors[s], std::move(err));
    }
  }
  runtime.Drain();
  runtime.Stop();

  auto& sink = dynamic_cast<SinkOp&>(runtime.graph().Get(sink_id));
  std::printf("windows summarized: %llu\n",
              static_cast<unsigned long long>(sink.outputs()));
  std::printf("matched (request, error) pairs in the last closed window: "
              "%.0f (expected 10)\n",
              sink.last_value());
  const SampleStats& lat = runtime.latency().Latency(job.job);
  if (!lat.empty()) {
    std::printf("join-to-dashboard latency: median %.2f ms\n",
                lat.Median() / kMillisecond);
  }
  return 0;
}
