// Log error summarization: the paper's IPQ4 ("summarizes errors from log
// events via a windowed join of two event streams, followed by aggregation
// on a tumbling window"), defined with the fluent API and fed real columnar
// data on the wall-clock engine.
//
//   requests (srcL) --+
//                     +-- windowed join on request id (1 s windows)
//   errors   (srcR) --+        |
//                        tumbling count -> sink
//
// The join emits one tuple per (request, error) match; the final aggregation
// counts matches per window.
#include <cstdio>
#include <vector>

#include "api/thread_engine.h"
#include "ops/sink.h"

using namespace cameo;

int main() {
  QueryDef def =
      Query("log_errors")
          .Constraint(Millis(800))
          .EventTime()
          .Source(2, {Micros(200), 0, 0.05}, "requests")
          .RightSource(2, {Micros(200), 0, 0.05}, "errors")
          .Shuffle()
          .WindowedJoin(1, Seconds(1), {Millis(2), /*per_tuple=*/40000, 0.05})
          .Shuffle()
          .WindowAgg(1, WindowSpec::Tumbling(Seconds(1)),
                     {Millis(2), Micros(10), 0.05}, AggKind::kSum,
                     /*per_key=*/false, "final")
          .OneToOne()
          .Sink({Micros(100), 0, 0.0});

  EngineOptions opt;
  opt.workers = 2;
  opt.wallclock.emulate_cost = false;
  ThreadEngine engine(opt);
  QueryHandle q = engine.Submit(def);
  std::vector<OperatorId> requests =
      engine.graph().stage(q.handles.source).operators;
  std::vector<OperatorId> errors =
      engine.graph().stage(q.handles.source_right).operators;
  OperatorId sink_id = engine.graph().stage(q.handles.sink).operators[0];

  // Two logical seconds of traffic. Requests 0..49 each second; errors for
  // every 5th request. Expected matches per closed window: 10.
  for (int second = 1; second <= 2; ++second) {
    for (std::size_t s = 0; s < requests.size(); ++s) {
      EventBatch req;
      req.progress = Seconds(second);
      for (int id = 0; id < 50; ++id) {
        if (static_cast<int>(s) != id % 2) continue;  // split across sources
        req.Append(/*key=*/id, /*value=*/1.0, Seconds(second) - Millis(10));
      }
      engine.IngestBatch(requests[s], std::move(req));
    }
    for (std::size_t s = 0; s < errors.size(); ++s) {
      EventBatch err;
      err.progress = Seconds(second);
      for (int id = 0; id < 50; id += 5) {
        if (static_cast<int>(s) != id % 2) continue;
        err.Append(/*key=*/id, /*value=*/1.0, Seconds(second) - Millis(3));
      }
      engine.IngestBatch(errors[s], std::move(err));
    }
  }
  engine.Drain();
  engine.Stop();

  auto& sink = dynamic_cast<SinkOp&>(engine.graph().Get(sink_id));
  std::printf("windows summarized: %llu\n",
              static_cast<unsigned long long>(sink.outputs()));
  std::printf("matched (request, error) pairs in the last closed window: "
              "%.0f (expected 10)\n",
              sink.last_value());
  SampleStats lat = engine.Latency(q);
  if (!lat.empty()) {
    std::printf("join-to-dashboard latency: median %.2f ms\n",
                lat.Median() / kMillisecond);
  }
  return 0;
}
