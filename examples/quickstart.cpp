// Quickstart: define a windowed-aggregation query with the fluent QueryDef
// API, run it on the wall-clock engine under the Cameo scheduler, feed it
// real columnar events, and read the results.
//
//   source (2 replicas) -> tumbling 1 s sum per key (2 replicas)
//          -> global sum -> sink
//
// Build & run:   ./quickstart
#include <cstdio>
#include <vector>

#include "api/thread_engine.h"
#include "ops/sink.h"

using namespace cameo;

int main() {
  // 1. Describe the query. The fluent definition carries everything that
  //    belongs to the *query*: topology, window, latency target, semantics.
  QueryDef def =
      Query("quickstart")
          .Constraint(Millis(800))
          .EventTime()
          .Source(2)
          .Shuffle()
          .WindowAgg(2, WindowSpec::Tumbling(Seconds(1)),
                     {Micros(300), /*per_tuple=*/1500, 0.05})
          .Shuffle()
          .WindowAgg(1, WindowSpec::Tumbling(Seconds(1)),
                     {Micros(500), Micros(5), 0.05}, AggKind::kSum,
                     /*per_key=*/false, "final")
          .OneToOne()
          .Sink();

  // 2. Start the engine: 2 workers, Cameo scheduler, LLF policy. The same
  //    definition would run unchanged on SimEngine in virtual time.
  EngineOptions opt;
  opt.workers = 2;
  opt.scheduler = SchedulerKind::kCameo;
  opt.policy = "LLF";
  opt.wallclock.emulate_cost = false;  // run at real speed, no spinning
  ThreadEngine engine(opt);
  QueryHandle q = engine.Submit(def);
  std::vector<OperatorId> sources = engine.graph().stage(q.handles.source).operators;
  OperatorId sink_id = engine.graph().stage(q.handles.sink).operators[0];

  // 3. Feed three logical seconds of events. Each batch carries (key, value,
  //    event-time) tuples; a batch whose progress lands on a window boundary
  //    closes that window (inclusive-right window semantics), so all three
  //    windows flush.
  double last_window_expected = 0;
  for (int second = 1; second <= 3; ++second) {
    for (std::size_t s = 0; s < sources.size(); ++s) {
      EventBatch batch;
      batch.progress = Seconds(second);
      for (int i = 0; i < 100; ++i) {
        double revenue = 0.01 * (second * 100 + i);
        batch.Append(/*key=*/i % 7, revenue,
                     Seconds(second) - Millis(5 * (i + 1)));
        if (second == 3) last_window_expected += revenue;
      }
      engine.IngestBatch(sources[s], std::move(batch));
    }
  }
  engine.Drain();
  engine.Stop();

  // 4. Read results: per-window outputs arrived at the sink; the latency
  //    recorder tracked the paper's end-to-end latency definition.
  auto& sink = dynamic_cast<SinkOp&>(engine.graph().Get(sink_id));
  std::printf("windows produced: %llu\n",
              static_cast<unsigned long long>(sink.outputs()));
  SampleStats lat = engine.Latency(q);
  if (!lat.empty()) {
    std::printf("end-to-end latency: median %.2f ms, max %.2f ms\n",
                lat.Median() / kMillisecond, lat.Max() / kMillisecond);
  }
  std::printf("deadline success rate: %.0f%%\n", 100 * engine.SuccessRate(q));
  std::printf("window-3 revenue: %.2f (expected %.2f)\n", sink.last_value(),
              last_window_expected);
  return 0;
}
