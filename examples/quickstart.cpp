// Quickstart: build a windowed-aggregation dataflow, run it on the
// wall-clock thread runtime under the Cameo scheduler, feed it real columnar
// events, and read the results.
//
//   source (2 replicas) -> tumbling 1 s sum per key (2 replicas)
//          -> global sum -> sink
//
// Build & run:   ./quickstart
#include <cstdio>

#include "ops/sink.h"
#include "runtime/thread_runtime.h"
#include "workload/tenants.h"

using namespace cameo;

int main() {
  // 1. Describe the query. QuerySpec is a convenience wrapper around
  //    DataflowGraph::AddJob/AddStage/Connect; see workload/tenants.h.
  QuerySpec spec = MakeLatencySensitiveSpec("quickstart");
  spec.sources = 2;
  spec.aggs = 2;
  spec.domain = TimeDomain::kEventTime;
  spec.window = Seconds(1);  // tumbling 1 s windows
  spec.slide = Seconds(1);
  spec.latency_constraint = Millis(800);

  DataflowGraph graph;
  JobHandles job = BuildAggregationJob(graph, spec);
  std::vector<OperatorId> sources = graph.stage(job.source).operators;
  OperatorId sink_id = graph.stage(job.sink).operators[0];

  // 2. Start the runtime: 2 workers, Cameo scheduler, LLF policy.
  RuntimeConfig cfg;
  cfg.num_workers = 2;
  cfg.scheduler = SchedulerKind::kCameo;
  cfg.policy = "LLF";
  cfg.emulate_cost = false;  // run at real speed, no synthetic spinning
  ThreadRuntime runtime(cfg, std::move(graph));
  runtime.Start();

  // 3. Feed three logical seconds of events. Each batch carries (key, value,
  //    event-time) tuples; a batch whose progress lands on a window boundary
  //    closes that window (inclusive-right window semantics), so all three
  //    windows flush.
  double last_window_expected = 0;
  for (int second = 1; second <= 3; ++second) {
    for (std::size_t s = 0; s < sources.size(); ++s) {
      EventBatch batch;
      batch.progress = Seconds(second);
      for (int i = 0; i < 100; ++i) {
        double revenue = 0.01 * (second * 100 + i);
        batch.Append(/*key=*/i % 7, revenue,
                     Seconds(second) - Millis(5 * (i + 1)));
        if (second == 3) last_window_expected += revenue;
      }
      runtime.IngestBatch(sources[s], std::move(batch));
    }
  }
  runtime.Drain();
  runtime.Stop();

  // 4. Read results: per-window outputs arrived at the sink; the latency
  //    recorder tracked the paper's end-to-end latency definition.
  auto& sink = dynamic_cast<SinkOp&>(runtime.graph().Get(sink_id));
  std::printf("windows produced: %llu\n",
              static_cast<unsigned long long>(sink.outputs()));
  const SampleStats& lat = runtime.latency().Latency(job.job);
  if (!lat.empty()) {
    std::printf("end-to-end latency: median %.2f ms, max %.2f ms\n",
                lat.Median() / kMillisecond, lat.Max() / kMillisecond);
  }
  std::printf("deadline success rate: %.0f%%\n",
              100 * runtime.latency().SuccessRate(job.job));
  std::printf("window-3 revenue: %.2f (expected %.2f)\n", sink.last_value(),
              last_window_expected);
  return 0;
}
