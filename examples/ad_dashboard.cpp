// Ad-revenue dashboard vs bulk analytics: the paper's motivating multi-tenant
// scenario (§1, §6.2) on the simulated cluster.
//
// A latency-sensitive dashboard query (1 s windows, 800 ms SLA, sparse
// input) shares 4 workers with eight bulk social-media analytics jobs (10 s
// windows, lax SLA, heavy input). Run once under Cameo and once under the
// Orleans-style baseline and compare what the dashboard user experiences.
#include <cstdio>

#include "bench_util/scenarios.h"

using namespace cameo;

namespace {

RunResult RunWith(SchedulerKind kind) {
  MultiTenantOptions opt;
  opt.scheduler = kind;
  opt.workers = 4;
  opt.duration = Seconds(60);
  opt.ls_jobs = 1;   // the dashboard
  opt.ba_jobs = 8;   // bulk analytics tenants
  opt.ba_msgs_per_sec = 40;  // past the saturation knee
  return RunMultiTenant(opt);
}

}  // namespace

int main() {
  std::printf("ad dashboard (1 s windows, 800 ms SLA) sharing 4 workers with "
              "8 bulk-analytics tenants\n\n");
  std::printf("%-10s %14s %14s %16s %18s\n", "scheduler", "dash_median",
              "dash_p99", "SLA_met", "analytics_median");
  for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kOrleans,
                             SchedulerKind::kFifo}) {
    RunResult r = RunWith(kind);
    std::printf("%-10s %12.1fms %12.1fms %15.1f%% %16.1fms\n",
                ToString(kind).c_str(), r.GroupPercentile("LS", 50),
                r.GroupPercentile("LS", 99), 100 * r.GroupSuccessRate("LS"),
                r.GroupPercentile("BA", 50));
  }
  std::printf("\nCameo keeps the dashboard inside its SLA by deferring "
              "analytics work whose deadlines are far away --\n"
              "no resources were reserved, no dataflow was reconfigured.\n");
  return 0;
}
