// Ad-revenue dashboard vs bulk analytics: the paper's motivating multi-tenant
// scenario (§1, §6.2), expressed through the frontend API on the simulated
// backend.
//
// A latency-sensitive dashboard query (1 s windows, 800 ms SLA, sparse
// input) shares 4 workers with eight bulk social-media analytics jobs (10 s
// windows, lax SLA, heavy input). Every tenant is one QueryDef with its
// ingestion spec attached; swapping the scheduler is one EngineOptions
// field. Run once under Cameo and once under the baselines and compare what
// the dashboard user experiences.
#include <cstdio>
#include <string>

#include "api/sim_engine.h"
#include "workload/tenants.h"

using namespace cameo;

namespace {

constexpr SimTime kDuration = Seconds(60);

RunResult RunWith(SchedulerKind kind) {
  EngineOptions opt;
  opt.workers = 4;
  opt.scheduler = kind;
  SimEngine engine(opt);

  // The dashboard: sparse aligned batches, strict 800 ms target.
  QuerySpec dash = MakeLatencySensitiveSpec("LS0");
  IngestSpec dash_in;
  dash_in.msgs_per_sec = dash.msgs_per_sec_per_source;
  dash_in.tuples_per_msg = dash.tuples_per_msg;
  dash_in.end = kDuration;
  dash_in.event_time_delay = Millis(50);
  engine.Submit(AggregationQueryDef(dash).Ingest(dash_in));

  // Eight bulk-analytics tenants pushing the cluster past its saturation
  // knee (40 msg/s per source).
  for (int i = 0; i < 8; ++i) {
    QuerySpec ba = MakeBulkAnalyticsSpec("BA" + std::to_string(i));
    ba.msgs_per_sec_per_source = 40;
    IngestSpec ba_in;
    ba_in.msgs_per_sec = ba.msgs_per_sec_per_source;
    ba_in.tuples_per_msg = ba.tuples_per_msg;
    ba_in.end = kDuration;
    ba_in.phase = (i + 1) * Millis(1);
    ba_in.event_time_delay = Millis(50);
    engine.Submit(AggregationQueryDef(ba).Ingest(ba_in));
  }

  engine.RunFor(kDuration);
  return engine.Summarize(kDuration);
}

}  // namespace

int main() {
  std::printf("ad dashboard (1 s windows, 800 ms SLA) sharing 4 workers with "
              "8 bulk-analytics tenants\n\n");
  std::printf("%-10s %14s %14s %16s %18s\n", "scheduler", "dash_median",
              "dash_p99", "SLA_met", "analytics_median");
  for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kOrleans,
                             SchedulerKind::kFifo}) {
    RunResult r = RunWith(kind);
    std::printf("%-10s %12.1fms %12.1fms %15.1f%% %16.1fms\n",
                ToString(kind).c_str(), r.GroupPercentile("LS", 50),
                r.GroupPercentile("LS", 99), 100 * r.GroupSuccessRate("LS"),
                r.GroupPercentile("BA", 50));
  }
  std::printf("\nCameo keeps the dashboard inside its SLA by deferring "
              "analytics work whose deadlines are far away --\n"
              "no resources were reserved, no dataflow was reconfigured.\n");
  return 0;
}
