// Figure 12: scheduling overhead, measured with google-benchmark on the real
// data structures (no simulation).
//  Left:  per-message cost of (i) FIFO scheduling, (ii) Cameo priority
//         scheduling without priority generation, (iii) full Cameo
//         (scheduling + context conversion). Paper: worst-case overhead
//         < 15% of a no-op message's processing time: ~4% priority
//         scheduling + ~11% priority generation.
//  Right: overhead as a fraction of execution time vs batch size. Paper:
//         6.4% at batch size 1 for a local aggregation, falling with batch.
//
// Batched-drain panel (claim-and-drain contract, this repo's dispatch path):
// BM_CameoScheduleBatch8 drains up to 8 messages per claim from a standing
// backlog -- one ready-queue pop, one claim CAS and one release amortize
// over the batch, and the mailbox node pool removes the per-push heap
// allocation. Messages arrive in runs of 8 per operator (batching clients),
// so the between-message priority re-check keeps the drain going; a strictly
// more urgent operator still cuts it short.
//
// Contended panel (sharded control plane): the same dispatch path hammered
// from 8 worker threads, (a) behind one global mutex -- the pre-refactor
// ThreadRuntime dispatch path, claim-one contract -- and (b) calling the
// internally-synchronized scheduler directly with the batched contract. All
// google-benchmark results land in the JSON as gb.<name>.ns_per_op so
// before/after runs can be diffed mechanically (bench/compare_baselines.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/runner/registry.h"
#include "core/context_converter.h"
#include "ops/sink.h"
#include "ops/source.h"
#include "ops/window_agg.h"
#include "sched/cameo_scheduler.h"
#include "sched/fifo_scheduler.h"

namespace cameo {
namespace {

constexpr int kOperators = 325;  // paper: 300-350 no-op tenants
constexpr std::size_t kDrain = 8;     // messages per claim in batched panels
constexpr int kBacklog = 2048;        // standing backlog for batched panels

Message MakeMsg(std::int64_t id, std::int64_t op) {
  Message m;
  m.id = MessageId{id};
  m.target = OperatorId{op};
  m.pc.id = m.id;
  m.pc.pri_global = id;          // precomputed priorities
  m.pc.pri_local = id;
  m.batch = EventBatch::Synthetic(1, id);
  return m;
}

/// Batching-client arrival pattern: ids land on one operator in runs of
/// kDrain before moving to the next, so per-mailbox backlogs are contiguous
/// in priority (the regime where drains actually batch).
std::int64_t RunOfEightOp(std::int64_t id) {
  return (id / static_cast<std::int64_t>(kDrain)) % kOperators;
}

void BM_FifoSchedule(benchmark::State& state) {
  FifoScheduler sched;
  const WorkerId w{0};
  std::int64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMsg(id, id % kOperators);
    ++id;
    sched.Enqueue(std::move(m), WorkerId{}, id);
    auto out = sched.Dequeue(w, id);
    benchmark::DoNotOptimize(out);
    sched.OnComplete(out->target, w, id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoSchedule);

void BM_CameoScheduleOnly(benchmark::State& state) {
  // Priority scheduling only: PCs arrive precomputed (no generation),
  // classic claim-one dispatch.
  CameoScheduler sched;
  const WorkerId w{0};
  std::int64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMsg(id, id % kOperators);
    ++id;
    sched.Enqueue(std::move(m), WorkerId{}, id);
    auto out = sched.Dequeue(w, id);
    benchmark::DoNotOptimize(out);
    sched.OnComplete(out->target, w, id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CameoScheduleOnly);

void BM_CameoScheduleBatch8(benchmark::State& state) {
  // Claim-and-drain contract over a standing backlog: amortized per-message
  // scheduling cost with pooled mailbox nodes.
  CameoScheduler sched;
  const WorkerId w{0};
  std::int64_t id = 0;
  for (; id < kBacklog; ++id) {
    sched.Enqueue(MakeMsg(id, RunOfEightOp(id)), WorkerId{}, id);
  }
  std::vector<Message> stash;
  std::size_t next = 0;
  for (auto _ : state) {
    sched.Enqueue(MakeMsg(id, RunOfEightOp(id)), WorkerId{}, id);
    ++id;
    if (next == stash.size()) {
      stash.clear();
      next = 0;
      while (sched.DequeueBatch(w, id, kDrain, stash) == 0) {
      }
      sched.OnComplete(stash.front().target, w, id);
    }
    benchmark::DoNotOptimize(stash[next]);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CameoScheduleBatch8);

struct ConversionRig {
  ConversionRig()
      : source("src", CostModel{}),
        agg("agg", WindowSpec::Tumbling(Seconds(1)), CostModel{},
            AggKind::kSum),
        converter(&policy, ConverterOptions{
                               .use_query_semantics = true,
                               .time_domain = TimeDomain::kEventTime}) {
    source.Bind(OperatorId{0}, StageId{0}, JobId{0});
    agg.Bind(OperatorId{1}, StageId{1}, JobId{0});
    ReplyContext rc;
    rc.valid = true;
    rc.cost_m = Micros(100);
    rc.cost_path = Micros(200);
    converter.SeedReply(agg.id(), rc);
  }
  LeastLaxityFirst policy;
  SourceOp source;
  WindowAggOp agg;
  ContextConverter converter;
};

void BM_CameoFull(benchmark::State& state) {
  // Priority generation (context conversion) + priority scheduling,
  // claim-one dispatch.
  CameoScheduler sched;
  ConversionRig rig;
  const WorkerId w{0};
  std::int64_t id = 0;
  PriorityContext upstream;
  upstream.latency_constraint = Millis(800);
  for (auto _ : state) {
    ++id;
    Message m;
    m.pc = rig.converter.BuildCxtAtOperator(upstream, rig.source, rig.agg,
                                            /*out_p=*/id * 1000,
                                            /*out_t=*/id * 1000 + 50,
                                            MessageId{id});
    m.id = m.pc.id;
    m.target = OperatorId{id % kOperators};
    m.batch = EventBatch::Synthetic(1, id);
    sched.Enqueue(std::move(m), WorkerId{}, id);
    auto out = sched.Dequeue(w, id);
    benchmark::DoNotOptimize(out);
    sched.OnComplete(out->target, w, id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CameoFull);

void BM_ContextConvertAlone(benchmark::State& state) {
  ConversionRig rig;
  PriorityContext upstream;
  upstream.latency_constraint = Millis(800);
  std::int64_t id = 0;
  for (auto _ : state) {
    ++id;
    PriorityContext pc = rig.converter.BuildCxtAtOperator(
        upstream, rig.source, rig.agg, id * 1000, id * 1000 + 50,
        MessageId{id});
    benchmark::DoNotOptimize(pc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContextConvertAlone);

// ---- contended enqueue+dequeue path, 8 worker threads ----
//
// Each thread plays a worker: enqueue one message, then obtain work (another
// thread may own the target -- operator exclusivity), then complete it.
// Message conservation keeps the scheduler's backlog bounded across
// iterations. The global-lock variant runs the pre-refactor claim-one
// contract under one mutex; the sharded variant runs the current batched
// contract directly.

struct ContendedRig {
  CameoScheduler sched;
  std::atomic<std::int64_t> next_id{0};
};
ContendedRig* g_contended = nullptr;
std::mutex g_global_lock;  // emulates the pre-refactor control-plane mutex

template <bool kGlobalLock>
void ContendedBody(benchmark::State& state) {
  if (state.thread_index() == 0) {
    delete g_contended;
    g_contended = new ContendedRig();
    // Standing backlog so the ready queue never empties: the benchmark
    // measures the contended dispatch path, not empty-queue parking.
    for (int i = 0; i < kBacklog; ++i) {
      std::int64_t id = g_contended->next_id.fetch_add(1);
      g_contended->sched.Enqueue(MakeMsg(id, RunOfEightOp(id)), WorkerId{},
                                 id);
    }
  }
  const WorkerId w{state.thread_index()};
  std::vector<Message> stash;
  std::size_t next = 0;
  for (auto _ : state) {
    ContendedRig& rig = *g_contended;
    std::int64_t id = rig.next_id.fetch_add(1, std::memory_order_relaxed);
    Message m = MakeMsg(id, RunOfEightOp(id));
    if constexpr (kGlobalLock) {
      {
        std::lock_guard lock(g_global_lock);
        rig.sched.Enqueue(std::move(m), WorkerId{}, id);
      }
      for (;;) {
        {
          std::lock_guard lock(g_global_lock);
          auto out = rig.sched.Dequeue(w, id);
          if (out.has_value()) {
            benchmark::DoNotOptimize(out);
            rig.sched.OnComplete(out->target, w, id);
            break;
          }
        }
        std::this_thread::yield();  // a real worker parks on a miss
      }
    } else {
      rig.sched.Enqueue(std::move(m), WorkerId{}, id);
      if (next == stash.size()) {
        stash.clear();
        next = 0;
        while (rig.sched.DequeueBatch(w, id, kDrain, stash) == 0) {
          std::this_thread::yield();  // a real worker parks on a miss
        }
        rig.sched.OnComplete(stash.front().target, w, id);
      }
      benchmark::DoNotOptimize(stash[next]);
      ++next;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CameoSchedule_GlobalLock8(benchmark::State& state) {
  ContendedBody<true>(state);
}
BENCHMARK(BM_CameoSchedule_GlobalLock8)->Threads(8)->UseRealTime();

void BM_CameoSchedule_Sharded8(benchmark::State& state) {
  ContendedBody<false>(state);
}
BENCHMARK(BM_CameoSchedule_Sharded8)->Threads(8)->UseRealTime();

// Right panel: overhead fraction vs batch size, using the calibrated local
// aggregation cost model (0.3 ms + 1.5 us/tuple).
void OverheadVsBatchSize(bench::BenchContext& ctx, double sched_ns_per_msg) {
  std::printf(
      "\n=== Figure 12 (right): scheduling overhead vs batch size ===\n");
  std::printf("paper: 6.4%% at batch size 1, falling with batch size\n");
  std::printf("%-12s %16s %16s\n", "batch", "exec_per_msg", "overhead");
  const CostModel agg{Micros(300), 1500, 0};
  for (std::int64_t batch : {1LL, 1000LL, 5000LL, 20000LL, 80000LL}) {
    double exec_ns = static_cast<double>(agg.Expected(batch));
    double frac = sched_ns_per_msg / (sched_ns_per_msg + exec_ns);
    std::printf("%-12lld %13.3fms %15.2f%%\n", static_cast<long long>(batch),
                exec_ns / 1e6, 100 * frac);
    ctx.Metric("overhead_frac.batch" + std::to_string(batch), frac);
  }
}

/// Console reporting plus one JSON metric per google-benchmark result.
class MetricCapturingReporter final : public benchmark::ConsoleReporter {
 public:
  explicit MetricCapturingReporter(bench::BenchContext& ctx) : ctx_(ctx) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string key = "gb." + run.benchmark_name() + ".ns_per_op";
      for (char& c : key) {
        if (c == ':' || c == '/') c = '_';
      }
      ctx_.Metric(key, run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchContext& ctx_;
};

void Run(bench::BenchContext& ctx) {
  // Left panel: google-benchmark micro-benchmarks on the real scheduler data
  // structures. Smoke mode caps measurement time per benchmark.
  char arg0[] = "cameo_bench";
  char arg1[] = "--benchmark_min_time=0.01";
  char* argv[] = {arg0, arg1, nullptr};
  int argc = ctx.smoke ? 2 : 1;
  benchmark::Initialize(&argc, argv);
  MetricCapturingReporter reporter(ctx);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Measure the full Cameo per-message cost once more, cheaply, to feed the
  // right panel (coarse timing is fine: it is a ratio illustration). This
  // runs the repo's actual dispatch contract -- context conversion per
  // message, claim-and-drain batches of up to kDrain over a standing
  // backlog, pooled mailbox nodes.
  using clock = std::chrono::steady_clock;
  CameoScheduler sched;
  ConversionRig rig;
  const WorkerId w0{0};
  PriorityContext upstream;
  upstream.latency_constraint = Millis(800);
  auto make = [&](std::int64_t i) {
    Message m;
    m.pc = rig.converter.BuildCxtAtOperator(upstream, rig.source, rig.agg,
                                            i * 1000, i * 1000 + 50,
                                            MessageId{i});
    m.id = m.pc.id;
    m.target = OperatorId{RunOfEightOp(i)};
    m.batch = EventBatch::Synthetic(1, i);
    return m;
  };
  std::int64_t id = 0;
  for (; id < kBacklog; ++id) {
    sched.Enqueue(make(id), WorkerId{}, id);
  }
  const int kIters = ctx.smoke ? 20000 : 200000;
  std::vector<Message> stash;
  std::size_t next = 0;
  auto t0 = clock::now();
  for (int i = 0; i < kIters; ++i) {
    sched.Enqueue(make(id), WorkerId{}, id);
    ++id;
    if (next == stash.size()) {
      stash.clear();
      next = 0;
      while (sched.DequeueBatch(w0, id, kDrain, stash) == 0) {
      }
      sched.OnComplete(stash.front().target, w0, id);
    }
    ++next;
  }
  double ns_per_msg =
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
          .count() /
      static_cast<double>(kIters);
  ctx.Metric("cameo_full.ns_per_msg", ns_per_msg);
  OverheadVsBatchSize(ctx, ns_per_msg);
}

CAMEO_BENCH_REGISTER("fig12_overhead", "Figure 12",
                     "per-message scheduling overhead (google-benchmark)",
                     Run);

}  // namespace
}  // namespace cameo
