// Allocation microbench: the zero-allocation hot path in isolation.
//  - pooled vs heap node round-trips (what Mailbox::Push saves per message),
//  - the pooled mailbox push -> drain -> pop cycle,
//  - the allocation-free sim event loop (calendar queue + inline closures).
// Simple chrono loops rather than google-benchmark: scenarios share one
// process-wide google-benchmark registry, and fig12 owns it.
#include <chrono>
#include <cstdio>

#include "bench/runner/registry.h"
#include "common/pool.h"
#include "sched/mailbox.h"
#include "sim/event_queue.h"

namespace cameo {
namespace {

using clock_type = std::chrono::steady_clock;

double NsPerOp(clock_type::time_point t0, clock_type::time_point t1,
               int iters) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count() /
         static_cast<double>(iters);
}

struct PayloadNode {
  explicit PayloadNode(Message m) : msg(std::move(m)) {}
  Message msg;
  PayloadNode* next = nullptr;
};

Message MakeMsg(std::int64_t id) {
  Message m;
  m.id = MessageId{id};
  m.target = OperatorId{id % 7};
  m.pc.id = m.id;
  m.pc.pri_global = id;
  m.pc.pri_local = id;
  m.batch = EventBatch::Synthetic(1, id);
  return m;
}

void Run(bench::BenchContext& ctx) {
  const int kIters = ctx.smoke ? 50000 : 500000;
  std::printf("=== allocation microbench (%d iters) ===\n", kIters);

  // Heap round-trip: what every mailbox push used to pay.
  auto t0 = clock_type::now();
  for (int i = 0; i < kIters; ++i) {
    auto* n = new PayloadNode(MakeMsg(i));
    delete n;
  }
  auto t1 = clock_type::now();
  const double heap_ns = NsPerOp(t0, t1, kIters);

  // Pool round-trip (same payload), thread-cache fast path once warm.
  auto& pool = Pool<PayloadNode>::Global();
  { pool.Delete(pool.New(MakeMsg(0))); }  // warm the cache
  t0 = clock_type::now();
  for (int i = 0; i < kIters; ++i) {
    auto* n = pool.New(MakeMsg(i));
    pool.Delete(n);
  }
  t1 = clock_type::now();
  const double pool_ns = NsPerOp(t0, t1, kIters);

  // Pooled mailbox cycle: push -> drain -> pop (the per-message mailbox
  // traffic of the dispatch path), steady-state depth 1.
  Mailbox mb(MailboxOrder::kLocalPriority);
  t0 = clock_type::now();
  for (int i = 0; i < kIters; ++i) {
    mb.Push(MakeMsg(i));
    mb.DrainInbox();
    Message m = mb.PopBest();
    (void)m;
  }
  t1 = clock_type::now();
  const double mailbox_ns = NsPerOp(t0, t1, kIters);

  // Sim event loop cycle: schedule + run one inline closure per iteration
  // (self-rescheduling chain, spread over bucket widths).
  EventQueue q;
  std::int64_t ran = 0;
  t0 = clock_type::now();
  for (int i = 0; i < kIters; ++i) {
    q.Schedule(q.now() + (i % 3) * Micros(100), [&ran] { ++ran; });
    q.RunNext();
  }
  t1 = clock_type::now();
  const double event_ns = NsPerOp(t0, t1, kIters);
  CAMEO_CHECK(ran == kIters);

  std::printf("%-28s %10.1f ns/op\n", "heap node round-trip", heap_ns);
  std::printf("%-28s %10.1f ns/op\n", "pool node round-trip", pool_ns);
  std::printf("%-28s %10.1f ns/op\n", "mailbox push+drain+pop", mailbox_ns);
  std::printf("%-28s %10.1f ns/op\n", "event schedule+run", event_ns);
  const PoolStats ps = pool.stats();
  std::printf("pool: %llu slabs, %llu acquired, %llu released\n",
              static_cast<unsigned long long>(ps.slabs),
              static_cast<unsigned long long>(ps.acquired),
              static_cast<unsigned long long>(ps.released));

  ctx.Metric("heap_node.ns_per_op", heap_ns);
  ctx.Metric("pool_node.ns_per_op", pool_ns);
  ctx.Metric("mailbox_cycle.ns_per_op", mailbox_ns);
  ctx.Metric("event_cycle.ns_per_op", event_ns);
  ctx.Metric("pool.slabs", static_cast<double>(ps.slabs));
}

CAMEO_BENCH_REGISTER("alloc_pool", "pooling",
                     "zero-allocation hot path microbenchmarks", Run);

}  // namespace
}  // namespace cameo
