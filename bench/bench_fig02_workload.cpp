// Figure 2: production workload characterization, reproduced from our
// synthetic generators (the production traces are unavailable; DESIGN.md
// documents the substitution). Paper shape:
//  (a) 10% of streams process the majority of the data (long tail);
//  (b) ad-hoc micro-batch scheduling overhead reaches ~80% for short jobs;
//  (c) per-source ingestion varies strongly across sources and time, with
//      second-scale spikes and idle periods.
#include <algorithm>
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "workload/trace.h"

namespace cameo {
namespace {

void VolumeDistribution(bench::BenchContext& ctx) {
  PrintFigureBanner("Figure 2(a)", "per-stream data volume distribution",
                    "top 10% of streams carry the majority of the data");
  auto volumes = SynthesizeVolumeDistribution(100, 1.5, 10e15);  // 10 PB/day
  double total = 0;
  for (double v : volumes) total += v;
  double acc = 0;
  PrintHeaderRow("top_streams", {"cumulative_share"});
  for (int k : {1, 5, 10, 25, 50, 100}) {
    acc = 0;
    for (int i = 0; i < k; ++i) acc += volumes[static_cast<std::size_t>(i)];
    PrintRow(std::to_string(k) + "%", {FormatPct(acc / total)});
    ctx.Metric("volume.top" + std::to_string(k) + "pct_share", acc / total);
  }
}

void MicroBatchOverhead(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 2(b)", "micro-batch job scheduling overhead",
      "ad-hoc periodic micro-batch jobs pay up to ~80% scheduling overhead; "
      "completion times span 10 s to 1000 s");
  // Model: each periodic micro-batch pays a fixed scheduling + startup cost
  // (containers, JVM/CLR spin-up, state reload) before doing useful work.
  const double startup_s = 8.0;
  PrintHeaderRow("job_work", {"completion", "overhead"});
  for (double work_s : {2.0, 10.0, 30.0, 100.0, 300.0, 1000.0}) {
    double completion = startup_s + work_s;
    double overhead = startup_s / completion;
    char work[32], comp[32];
    std::snprintf(work, sizeof(work), "%.0fs", work_s);
    std::snprintf(comp, sizeof(comp), "%.0fs", completion);
    PrintRow(work, {comp, FormatPct(overhead)});
    ctx.Metric("microbatch.overhead_at_" + std::string(work), overhead);
  }
}

void IngestionHeatmap(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 2(c)", "ingestion heat map across 20 sources",
      "high variability across sources and time; spikes lasting seconds");
  SkewedTraceSpec spec;
  spec.sources = 20;
  spec.length = ctx.Dur(Seconds(60), Seconds(10));
  spec.total_tuples_per_sec = 200000;
  spec.skew_ratio = 200;
  spec.burst_alpha = 1.5;
  spec.idle_prob = 0.2;
  spec.msgs_per_interval = 1;
  Rng rng(42);
  auto trace = SynthesizeSkewedTrace(spec, rng);

  const std::int64_t secs = spec.length / kSecond;
  double max_ratio = 0;
  PrintHeaderRow("source", {"mean_t/s", "peak_t/s", "peak/mean", "idle_secs"});
  for (std::size_t s = 0; s < trace.size(); s += 4) {
    double total = 0, peak = 0;
    std::int64_t idle = secs - static_cast<std::int64_t>(trace[s].size());
    for (const Arrival& a : trace[s]) {
      total += static_cast<double>(a.tuples);
      peak = std::max(peak, static_cast<double>(a.tuples));
    }
    double mean = total / static_cast<double>(secs);
    max_ratio = std::max(max_ratio, mean > 0 ? peak / mean : 0.0);
    char m[32], p[32], r[32];
    std::snprintf(m, sizeof(m), "%.0f", mean);
    std::snprintf(p, sizeof(p), "%.0f", peak);
    std::snprintf(r, sizeof(r), "%.1fx", mean > 0 ? peak / mean : 0.0);
    PrintRow("src" + std::to_string(s), {m, p, r, std::to_string(idle)});
  }
  ctx.Metric("ingestion.max_peak_to_mean", max_ratio);
}

void Run(bench::BenchContext& ctx) {
  VolumeDistribution(ctx);
  MicroBatchOverhead(ctx);
  IngestionHeatmap(ctx);
}

CAMEO_BENCH_REGISTER("fig02_workload", "Figure 2",
                     "production workload characterization (synthetic)",
                     Run);

}  // namespace
}  // namespace cameo
