// Aggregation-kernel microbench: row-wise vs columnar window folding.
//
// The row-wise leg reproduces the seed WindowAggOp inner loop: per row, per
// window end, one std::map probe plus a single-tuple fold (FoldOne). The
// columnar leg is the PR's kernel layer: WindowPlan assigns a whole batch's
// rows to window buckets in one pass, then each bucket folds against its
// accumulator with one map probe and one FoldRows call. Both legs consume
// identical pre-generated batches and must produce bit-identical window
// results (CAMEO_CHECK'd per config).
//
// The sum kernel sweeps batch sizes (the ns/row gap is the figure: the
// per-row probe amortizes away as batches grow); the rest of the roster runs
// at one representative batch size. Simple chrono loops rather than
// google-benchmark: scenarios share one process-wide google-benchmark
// registry, and fig12 owns it.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/runner/registry.h"
#include "common/check.h"
#include "common/rng.h"
#include "ops/agg_kernels.h"

namespace cameo {
namespace {

using clock_type = std::chrono::steady_clock;

constexpr LogicalTime kSlide = 64;

struct Config {
  const char* name;
  AggKind kind;
  bool per_key;
  LogicalTime size;  // window size; kSlide = tumbling
  int batch_size;
};

std::vector<EventBatch> MakeBatches(int batch_size, std::int64_t total_rows,
                                    std::uint64_t seed) {
  std::vector<EventBatch> batches;
  Rng rng(seed);
  LogicalTime t = 1;
  std::int64_t made = 0;
  while (made < total_rows) {
    EventBatch b;
    for (int i = 0; i < batch_size && made < total_rows; ++i, ++made) {
      t += rng.UniformInt(0, 1);  // ~2 rows per tick -> ~128 rows per slide
      b.Append(rng.UniformInt(0, 63), rng.Uniform(0.0, 100.0), t);
    }
    b.progress = t;
    batches.push_back(std::move(b));
  }
  return batches;
}

double NsPerRow(clock_type::time_point t0, clock_type::time_point t1,
                std::int64_t rows) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count() /
         static_cast<double>(rows);
}

/// The seed operator's shape: per (row, window) one map probe + one fold.
double RunRowWise(const AggKernel& kernel, const std::vector<EventBatch>& in,
                  LogicalTime W, std::int64_t rows,
                  std::map<LogicalTime, AggWindowState>& windows) {
  const auto t0 = clock_type::now();
  for (const EventBatch& b : in) {
    for (std::size_t i = 0; i < b.keys.size(); ++i) {
      const LogicalTime t = b.times[i];
      for (LogicalTime end = ((t + kSlide - 1) / kSlide) * kSlide;
           end < t + W; end += kSlide) {
        kernel.FoldOne(windows[end], b.keys[i], b.values[i], t);
      }
    }
  }
  return NsPerRow(t0, clock_type::now(), rows);
}

/// The kernel layer: one assignment pass, then whole-bucket folds.
double RunColumnar(const AggKernel& kernel, const std::vector<EventBatch>& in,
                   LogicalTime W, std::int64_t rows, WindowPlan& plan,
                   std::map<LogicalTime, AggWindowState>& windows) {
  const auto t0 = clock_type::now();
  for (const EventBatch& b : in) {
    plan.Build(b.times, W, kSlide);
    const bool contiguous = plan.contiguous();
    const std::uint32_t* row_ids = plan.rows();
    for (const WindowPlan::Bucket& bk : plan.buckets()) {
      for (std::uint32_t j = 0; j < bk.windows; ++j) {
        const LogicalTime end =
            bk.first_end + static_cast<LogicalTime>(j) * kSlide;
        if (contiguous) {
          kernel.FoldRows(windows[end], b, bk.begin, bk.count);
        } else {
          kernel.FoldRows(windows[end], b, row_ids + bk.begin, bk.count);
        }
      }
    }
  }
  return NsPerRow(t0, clock_type::now(), rows);
}

void CheckEquivalent(const AggKernel& kernel,
                     const std::map<LogicalTime, AggWindowState>& a,
                     const std::map<LogicalTime, AggWindowState>& b) {
  CAMEO_CHECK(a.size() == b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    CAMEO_CHECK(ia->first == ib->first);
    EventBatch ea, eb;
    kernel.Emit(ia->second, ia->first, ea);
    kernel.Emit(ib->second, ib->first, eb);
    CAMEO_CHECK(ea.keys == eb.keys);
    CAMEO_CHECK(ea.values == eb.values);  // bit-identical, not approximate
  }
}

void Run(bench::BenchContext& ctx) {
  const std::int64_t total_rows = ctx.smoke ? (1 << 16) : (1 << 20);
  const Config configs[] = {
      // The headline sweep: tumbling sum across batch sizes.
      {"sum", AggKind::kSum, false, kSlide, 16},
      {"sum", AggKind::kSum, false, kSlide, 64},
      {"sum", AggKind::kSum, false, kSlide, 256},
      {"sum", AggKind::kSum, false, kSlide, 1024},
      {"sum", AggKind::kSum, false, kSlide, 4096},
      // Sliding windows multiply the per-row window fan-out (W/S = 4).
      {"sum_slide4", AggKind::kSum, false, 4 * kSlide, 16},
      {"sum_slide4", AggKind::kSum, false, 4 * kSlide, 64},
      {"sum_slide4", AggKind::kSum, false, 4 * kSlide, 256},
      {"sum_slide4", AggKind::kSum, false, 4 * kSlide, 1024},
      {"sum_slide4", AggKind::kSum, false, 4 * kSlide, 4096},
      // The rest of the roster at one representative batch size.
      {"per_key_sum", AggKind::kSum, true, kSlide, 1024},
      {"max", AggKind::kMax, false, kSlide, 1024},
      {"top3", AggKind::kTopK, false, kSlide, 1024},
      {"p95", AggKind::kPercentile, false, kSlide, 1024},
      {"ohlc", AggKind::kOhlc, false, kSlide, 1024},
  };

  std::printf("=== agg kernels: row-wise vs columnar (%lld rows/config) ===\n",
              static_cast<long long>(total_rows));
  std::printf("%-14s %6s %12s %12s %8s\n", "kernel", "batch", "row ns/row",
              "col ns/row", "speedup");

  WindowPlan plan;
  for (const Config& c : configs) {
    const AggKernel kernel(c.kind, c.per_key);
    const std::vector<EventBatch> batches =
        MakeBatches(c.batch_size, total_rows, /*seed=*/42);

    // Warm-up pass (touches the allocator and page cache), then the
    // measured passes over fresh window maps.
    {
      std::map<LogicalTime, AggWindowState> w;
      RunColumnar(kernel, batches, c.size, total_rows, plan, w);
    }
    std::map<LogicalTime, AggWindowState> row_windows;
    std::map<LogicalTime, AggWindowState> col_windows;
    const double row_ns =
        RunRowWise(kernel, batches, c.size, total_rows, row_windows);
    const double col_ns =
        RunColumnar(kernel, batches, c.size, total_rows, plan, col_windows);
    CheckEquivalent(kernel, row_windows, col_windows);

    const double speedup = row_ns / col_ns;
    std::printf("%-14s %6d %12.2f %12.2f %7.2fx\n", c.name, c.batch_size,
                row_ns, col_ns, speedup);
    char metric[96];
    std::snprintf(metric, sizeof(metric), "rowwise_%s_b%d.ns_per_op", c.name,
                  c.batch_size);
    ctx.Metric(metric, row_ns);
    std::snprintf(metric, sizeof(metric), "columnar_%s_b%d.ns_per_op", c.name,
                  c.batch_size);
    ctx.Metric(metric, col_ns);
    std::snprintf(metric, sizeof(metric), "%s_b%d.speedup", c.name,
                  c.batch_size);
    ctx.Metric(metric, speedup);
  }
}

CAMEO_BENCH_REGISTER("fig_agg_kernels", "kernels",
                     "row-wise vs columnar window aggregation ns/row", Run);

}  // namespace
}  // namespace cameo
