// Chaos panel (robustness): the fig08 weak-scaling workload on 2 shards,
// swept across injected transport-fault schedules (src/shard/
// fault_transport.h) with the reliable-delivery session layer
// (src/shard/session.h) repairing the damage in flight. Ingestion stops 2 s
// before the horizon so retransmit chains converge before virtual time runs
// out; the conservation gates depend on that grace window.
//
// Gates (via the `_met_rate`-suffix convention of compare_baselines.py):
//   - per-schedule deadline-met rate and p99 (deterministic per seed);
//   - `gate.conservation_met_rate`: 1.0 iff every chaos run delivered each
//     distinct app frame exactly once (sent_unique == delivered) AND its
//     counters saw exactly the rows of the fault-free run -- faults may
//     cost latency, never data;
//   - `gate.determinism_met_rate`: 1.0 iff re-running a chaos schedule
//     in-process reproduces it bit-for-bit (same rows, frames, retransmits);
//   - `gate.drop1dup1_floor_met_rate`: 1.0 iff the met rate under 1% drop +
//     1% duplication stays >= 95% -- the paper-style claim that modest loss
//     degrades deadlines gracefully, not catastrophically.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

constexpr std::int64_t kUsersPerShard = 125'000;
constexpr int kShards = 2;

KeyedScenarioOptions BaseOptions(bench::BenchContext& ctx) {
  // The fig08 2-shard panel configuration (bench_fig08_shards.cpp), plus the
  // session layer and an ingest cutoff that leaves recovery headroom.
  KeyedScenarioOptions opt;
  opt.dist = KeyDistribution::kZipf;
  opt.zipf_s = 0.9;
  opt.num_keys = kUsersPerShard * kShards;
  opt.sources = 2 * kShards;
  opt.counters = 4 * kShards;
  opt.splits = 2;
  opt.merge_replicas = 2;
  opt.msgs_per_sec = 20;
  opt.tuples_per_msg = 2000;
  opt.counter_per_tuple = 400;  // ns per tuple
  opt.workers = 4;              // per shard
  opt.shards = kShards;
  opt.duration = ctx.Dur(Seconds(30), Seconds(4));
  opt.ingest_end = opt.duration - Seconds(2);
  opt.constraint = Millis(800);
  opt.seed = 42;
  opt.session.enabled = true;
  return opt;
}

struct ChaosConfig {
  const char* tag;
  shard::FaultPlan faults;
  bool smoke;  // part of the fast ctest sweep (and thus the baseline)
};

std::vector<ChaosConfig> Schedules(SimTime duration) {
  std::vector<ChaosConfig> cfgs;
  cfgs.push_back({"clean", {}, true});
  {
    shard::FaultPlan f;
    f.drop_rate = 0.01;
    f.dup_rate = 0.01;
    cfgs.push_back({"drop1dup1", f, true});
  }
  {
    shard::FaultPlan f;
    f.drop_rate = 0.05;
    cfgs.push_back({"drop5", f, true});
  }
  {
    shard::FaultPlan f;
    f.corrupt_rate = 0.02;
    f.delay_rate = 0.10;
    cfgs.push_back({"corrupt2delay10", f, false});
  }
  {
    shard::FaultPlan f;
    f.reorder_rate = 0.10;
    cfgs.push_back({"reorder10", f, false});
  }
  {
    shard::FaultPlan f;
    f.partitions.push_back({0, 1, Seconds(1), Seconds(1) + Millis(500)});
    cfgs.push_back({"partition500ms", f, false});
  }
  {
    shard::FaultPlan f;
    f.stalls.push_back({1, duration / 2, duration / 2 + Millis(300)});
    cfgs.push_back({"stall300ms", f, false});
  }
  return cfgs;
}

struct ChaosRun {
  KeyedScenarioResult r;
  double met = 0;
  double p99 = 0;
};

ChaosRun RunOne(const KeyedScenarioOptions& base,
                const shard::FaultPlan& faults) {
  KeyedScenarioOptions opt = base;
  opt.faults = faults;
  ChaosRun out;
  out.r = RunKeyedScenario(opt);
  out.met = out.r.run.GroupSuccessRate("KEYED");
  out.p99 = out.r.run.GroupPercentile("KEYED", 99);
  return out;
}

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Chaos panel (robustness)",
      "fig08 2-shard workload under injected drop/dup/corrupt/delay/"
      "reorder/partition/stall schedules",
      "delivery conserved exactly under every schedule; met rate under "
      "1% drop + 1% dup stays >= 95%");
  PrintHeaderRow("schedule",
                 {"met", "p99", "frames", "retx", "dup_drop", "crpt", "rows"});

  const KeyedScenarioOptions base = BaseOptions(ctx);
  const std::vector<ChaosConfig> schedules = Schedules(base.duration);
  std::int64_t clean_rows = -1;
  bool conservation = true;
  double drop1dup1_met = 0;

  for (const ChaosConfig& cfg : schedules) {
    if (ctx.smoke && !cfg.smoke) continue;
    const ChaosRun run = RunOne(base, cfg.faults);
    const shard::TransportStats& ts = run.r.transport;
    if (clean_rows < 0) clean_rows = run.r.rows_seen;  // first row is clean

    PrintRow(cfg.tag,
             {FormatPct(run.met), FormatMs(run.p99),
              std::to_string(run.r.frames_sent),
              std::to_string(ts.retransmits), std::to_string(ts.dup_drops),
              std::to_string(ts.corrupt_drops),
              std::to_string(run.r.rows_seen)});
    const std::string tag = cfg.tag;
    ctx.Metric(tag + "_met_rate", run.met);
    ctx.Metric(tag + "_p99_ms", run.p99);
    ctx.Metric(tag + ".frames_sent", static_cast<double>(run.r.frames_sent));
    ctx.Metric(tag + ".rows_seen", static_cast<double>(run.r.rows_seen));
    ctx.Metric(tag + ".retransmits", static_cast<double>(ts.retransmits));
    ctx.Metric(tag + ".dup_drops", static_cast<double>(ts.dup_drops));
    ctx.Metric(tag + ".corrupt_drops", static_cast<double>(ts.corrupt_drops));
    ctx.Metric(tag + ".acks_sent", static_cast<double>(ts.acks_sent));

    // Conservation: exactly-once delivery of every distinct app frame, and
    // the dataflow saw the same data as the fault-free run.
    if (ts.sent_unique != ts.delivered) conservation = false;
    if (run.r.rows_seen != clean_rows) conservation = false;
    if (tag == "drop1dup1") drop1dup1_met = run.met;
  }

  // Bit-determinism: the drop1dup1 schedule, replayed in-process, must
  // reproduce every counter of the first run exactly.
  bool deterministic = true;
  {
    const ChaosConfig& cfg = schedules[1];  // drop1dup1
    const ChaosRun a = RunOne(base, cfg.faults);
    const ChaosRun b = RunOne(base, cfg.faults);
    deterministic =
        a.r.rows_seen == b.r.rows_seen &&
        a.r.count_emitted == b.r.count_emitted &&
        a.r.frames_sent == b.r.frames_sent &&
        a.r.transport.retransmits == b.r.transport.retransmits &&
        a.r.transport.dup_drops == b.r.transport.dup_drops &&
        a.r.transport.faults_dropped == b.r.transport.faults_dropped &&
        a.met == b.met && a.p99 == b.p99;
  }

  const bool floor_ok = drop1dup1_met >= 0.95;
  std::printf(
      "chaos: delivery %s, replay %s, drop1dup1 met %s (floor 95%%)\n",
      conservation ? "conserved exactly" : "NOT conserved",
      deterministic ? "bit-deterministic" : "NOT deterministic",
      floor_ok ? "above floor" : "BELOW floor");
  ctx.Metric("gate.conservation_met_rate", conservation ? 1.0 : 0.0);
  ctx.Metric("gate.determinism_met_rate", deterministic ? 1.0 : 0.0);
  ctx.Metric("gate.drop1dup1_floor_met_rate", floor_ok ? 1.0 : 0.0);
}

CAMEO_BENCH_REGISTER("fig_chaos", "Chaos panel",
                     "fault-injected 2-shard runs: reliable delivery, "
                     "bounded met-rate degradation, bit-determinism",
                     Run);

}  // namespace
}  // namespace cameo
