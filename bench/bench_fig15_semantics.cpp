// Figure 15: value of query-semantics awareness. Cameo without query
// semantics still knows the DAG and latency constraints but cannot extend
// deadlines to window boundaries (t_MF falls back to t_M). Paper: ~19%
// higher Group-2 median without semantics, but still up to 38% / 22% better
// (Group 1 / Group 2 medians) than the baselines.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 15", "benefit of query-semantics awareness",
      "Cameo w/o semantics slightly worse than full Cameo, still beats "
      "Orleans and FIFO");
  struct Config {
    const char* label;
    SchedulerKind kind;
    bool semantics;
  };
  const Config configs[] = {
      {"Cameo", SchedulerKind::kCameo, true},
      {"Cameo w/o semantics", SchedulerKind::kCameo, false},
      {"FIFO", SchedulerKind::kFifo, true},
      {"Orleans", SchedulerKind::kOrleans, true},
  };
  PrintHeaderRow("config", {"LS_med", "LS_p99", "BA_med", "BA_p99"});
  for (const Config& c : configs) {
    MultiTenantOptions opt;
    opt.scheduler = c.kind;
    opt.use_query_semantics = c.semantics;
    opt.workers = 4;
    opt.duration = ctx.Dur(Seconds(60));
    opt.ls_jobs = 4;
    opt.ba_jobs = 8;
    opt.ba_msgs_per_sec = 28;  // busy but below saturation (paper's regime)
    // The regime where semantics matter: BA messages arrive mid-window
    // (Poisson, not boundary-aligned) under a moderate constraint. Without
    // TRANSFORM's deadline extension they look falsely urgent (ddl = t + L)
    // and steal capacity from the latency-sensitive group, even though their
    // output is only due at the 10 s window boundary.
    opt.ba_arrivals = ArrivalKind::kPoisson;
    opt.ba_constraint = Seconds(5);
    RunResult r = RunMultiTenant(opt);
    PrintRow(c.label, {FormatMs(r.GroupPercentile("LS", 50)),
                       FormatMs(r.GroupPercentile("LS", 99)),
                       FormatMs(r.GroupPercentile("BA", 50)),
                       FormatMs(r.GroupPercentile("BA", 99))});
    const std::string key(c.label);
    ctx.Metric(key + ".LS_median_ms", r.GroupPercentile("LS", 50));
    ctx.Metric(key + ".BA_median_ms", r.GroupPercentile("BA", 50));
  }
}

CAMEO_BENCH_REGISTER("fig15_semantics", "Figure 15",
                     "value of query-semantics awareness",
                     Run);

}  // namespace
}  // namespace cameo
