// Ablation studies for Cameo's design choices (DESIGN.md §5):
//  1. Cold-start seeding: static critical-path priors vs learning from zero.
//  2. Starvation guard (§6.3): capped vs uncapped waiting under overload.
//  3. Reply-context feedback: live profiling vs frozen (seed-only) costs.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void SeedingAblation(bench::BenchContext& ctx) {
  PrintFigureBanner("Ablation A", "cold-start cost seeding",
                    "static priors mainly help the first windows; steady "
                    "state converges either way");
  PrintHeaderRow("config", {"LS_med", "LS_p99", "LS_max"});
  const SimTime duration = ctx.Dur(Seconds(60));
  for (bool seeded : {true, false}) {
    DataflowGraph graph;
    std::vector<JobHandles> handles;
    for (int i = 0; i < 4; ++i) {
      QuerySpec spec = MakeLatencySensitiveSpec("LS" + std::to_string(i));
      handles.push_back(BuildAggregationJob(graph, spec));
    }
    ClusterConfig cfg;
    cfg.num_workers = 2;
    cfg.seed_static_estimates = seeded;
    Cluster cluster(cfg, std::move(graph));
    for (auto& h : handles) {
      cluster.AddIngestion(h.source, [duration](int r) {
        return std::make_unique<ConstantRate>(1.0, 1000, 0, duration,
                                              Millis(2 + 3 * r), true);
      });
    }
    cluster.Run(duration);
    RunResult r = SummarizeRun(cluster, duration);
    double mx = 0;
    for (const auto& j : r.jobs) mx = std::max(mx, j.max_ms);
    PrintRow(seeded ? "seeded priors" : "cold start",
             {FormatMs(r.GroupPercentile("LS", 50)),
              FormatMs(r.GroupPercentile("LS", 99)), FormatMs(mx)});
    const std::string key = seeded ? "seeded" : "cold_start";
    ctx.Metric(key + ".LS_median_ms", r.GroupPercentile("LS", 50));
    ctx.Metric(key + ".LS_max_ms", mx);
  }
}

void StarvationAblation(bench::BenchContext& ctx) {
  PrintFigureBanner("Ablation B", "starvation guard under overload (§6.3)",
                    "the guard trades a little LS tail for bounded BA "
                    "waiting when the cluster is past capacity");
  PrintHeaderRow("starvation_limit",
                 {"LS_p99", "LS_met", "BA_med", "BA_max"});
  const SimTime kDuration = ctx.Dur(Seconds(60));
  // Guard limits scale with the run so the capped configurations still bind
  // in smoke mode.
  for (Duration limit : {kTimeMax, kDuration / 2, kDuration / 12}) {
    const int kLsJobs = 4, kBaJobs = 8, kWorkers = 4;
    const double kBaRate = 45;  // past saturation: something must starve

    DataflowGraph graph;
    std::vector<JobHandles> handles;
    for (int i = 0; i < kLsJobs; ++i) {
      QuerySpec spec = MakeLatencySensitiveSpec("LS" + std::to_string(i));
      handles.push_back(BuildAggregationJob(graph, spec));
    }
    for (int i = 0; i < kBaJobs; ++i) {
      QuerySpec spec = MakeBulkAnalyticsSpec("BA" + std::to_string(i));
      spec.msgs_per_sec_per_source = kBaRate;
      handles.push_back(BuildAggregationJob(graph, spec));
    }
    ClusterConfig cfg;
    cfg.num_workers = kWorkers;
    cfg.sched.starvation_limit = limit;
    Cluster cluster(cfg, std::move(graph));
    for (std::size_t i = 0; i < handles.size(); ++i) {
      double rate = i < static_cast<std::size_t>(kLsJobs) ? 1.0 : kBaRate;
      cluster.AddIngestion(handles[i].source, [rate, kDuration](int r) {
        return std::make_unique<ConstantRate>(rate, 1000, 0, kDuration,
                                              Millis(2 + 3 * r), true);
      });
    }
    cluster.Run(kDuration);
    RunResult r = SummarizeRun(cluster, kDuration);
    double ba_max = 0;
    for (const auto& j : r.jobs) {
      if (j.name.rfind("BA", 0) == 0) ba_max = std::max(ba_max, j.max_ms);
    }
    std::string label =
        limit == kTimeMax ? "off (paper default)" : FormatMs(ToMillis(limit));
    PrintRow(label, {FormatMs(r.GroupPercentile("LS", 99)),
                     FormatPct(r.GroupSuccessRate("LS")),
                     FormatMs(r.GroupPercentile("BA", 50)), FormatMs(ba_max)});
    const std::string key =
        limit == kTimeMax ? "guard_off" : "guard_" + label;
    ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
    ctx.Metric(key + ".BA_max_ms", ba_max);
  }
}

void FeedbackAblation(bench::BenchContext& ctx) {
  PrintFigureBanner("Ablation C", "reply-context feedback",
                    "live RC profiling vs frozen estimates: feedback matters "
                    "when costs drift from the priors");
  PrintHeaderRow("config", {"LS_med", "LS_p99"});
  for (Duration sigma : {Duration{0}, Millis(500)}) {
    // Perturbation stands in for drift between priors and reality; with
    // feedback the EWMA keeps tracking ground truth regardless.
    MultiTenantOptions opt;
    opt.scheduler = SchedulerKind::kCameo;
    opt.workers = 4;
    opt.duration = ctx.Dur(Seconds(60));
    opt.ls_jobs = 4;
    opt.ba_jobs = 8;
    opt.ba_msgs_per_sec = 30;
    opt.perturbation = sigma;
    RunResult r = RunMultiTenant(opt);
    PrintRow(sigma == 0 ? "accurate estimates" : "drifted estimates (0.5s)",
             {FormatMs(r.GroupPercentile("LS", 50)),
              FormatMs(r.GroupPercentile("LS", 99))});
    const std::string key = sigma == 0 ? "accurate" : "drifted";
    ctx.Metric(key + ".LS_median_ms", r.GroupPercentile("LS", 50));
    ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
  }
}

void Run(bench::BenchContext& ctx) {
  SeedingAblation(ctx);
  StarvationAblation(ctx);
  FeedbackAblation(ctx);
}

CAMEO_BENCH_REGISTER("ablation", "Ablations A-C",
                     "cost seeding, starvation guard, reply-context feedback",
                     Run);

}  // namespace
}  // namespace cameo
