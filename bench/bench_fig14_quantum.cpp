// Figure 14: effect of the re-scheduling quantum (§5.2), under the skewed
// Fig. 10 workload. Left: all jobs trigger on the same stream progress
// (clustered); right: jobs trigger on interleaved progress. Paper: with
// clustered triggers, the finest granularity suffers from frequent context
// switches (longer tail), while a very large quantum (100 ms) hurts by
// blocking high-priority messages behind low-priority operators.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void RunSide(bench::BenchContext& ctx, const char* side, const char* title,
             Duration interleave) {
  std::printf("\n--- %s ---\n", title);
  PrintHeaderRow("quantum", {"LS_med", "LS_p99", "LS_met", "swaps"});
  for (Duration quantum : {Duration{0}, Millis(1), Millis(10), Millis(100)}) {
    MultiTenantOptions opt;
    opt.scheduler = SchedulerKind::kCameo;
    opt.quantum = quantum;
    opt.workers = 4;
    opt.duration = ctx.Dur(Seconds(60));
    opt.ls_jobs = 6;
    opt.ba_jobs = 6;
    // Many small messages (~0.6 ms each) with a realistic activation-swap
    // cost: the finest granularity pays one switch per message, while a
    // moderate quantum amortizes it; a 100 ms quantum instead blocks urgent
    // work behind a draining operator.
    opt.ba_msgs_per_sec = 110;
    opt.ba_tuples_per_msg = 200;
    opt.switch_cost = Micros(200);
    opt.interleave_step = interleave;
    RunResult r = RunMultiTenant(opt);
    std::string label = quantum == 0 ? "finest" : FormatMs(ToMillis(quantum));
    PrintRow(label, {FormatMs(r.GroupPercentile("LS", 50)),
                     FormatMs(r.GroupPercentile("LS", 99)),
                     FormatPct(r.GroupSuccessRate("LS")),
                     std::to_string(r.sched.operator_swaps)});
    const std::string key = std::string(side) + ".q" +
                            (quantum == 0 ? "finest"
                                          : std::to_string(quantum /
                                                           kMillisecond) +
                                                "ms");
    ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
    ctx.Metric(key + ".swaps",
               static_cast<double>(r.sched.operator_swaps));
  }
}

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 14", "effect of the re-scheduling quantum",
      "clustered triggers: finest quantum pays context-switch overhead in "
      "the tail; 100 ms quantum causes head-of-line blocking; ~1-10 ms is "
      "the sweet spot");
  RunSide(ctx, "clustered",
          "left: clustered stream progress (all jobs aligned)", 0);
  RunSide(ctx, "interleaved",
          "right: interleaved stream progress (staggered boundaries)",
          Millis(125));
}

CAMEO_BENCH_REGISTER("fig14_quantum", "Figure 14",
                     "effect of the re-scheduling quantum",
                     Run);

}  // namespace
}  // namespace cameo
