// Figure 17 (beyond the paper): latency-SLO attainment under tenant churn.
// The paper's §2 workload analysis shows tenant streams joining and leaving
// continuously; this scenario replays a Poisson-arrival / Pareto-lifetime
// churn script of latency-sensitive tenants over a static bulk-analytics
// background and compares schedulers on the churned tenants' met-deadline
// fraction. Expectation: Cameo's deadline-aware ordering keeps short-lived
// tenants inside their constraint where FIFO/Orleans/Slot queue them behind
// the background bulk work.
#include <string>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 17", "SLO attainment under tenant churn (hot add/remove)",
      "Cameo keeps churned LS tenants' met-deadline fraction high under a "
      "BA background; FIFO-style baselines degrade");
  PrintHeaderRow("sched",
                 {"grp", "median", "p99", "met", "add", "del", "purged"});
  for (SchedulerKind kind :
       {SchedulerKind::kCameo, SchedulerKind::kFifo, SchedulerKind::kOrleans,
        SchedulerKind::kSlot}) {
    ChurnScenarioOptions opt;
    opt.scheduler = kind;
    opt.workers = 4;
    opt.background_ba_jobs = 2;
    // Heavy batches (~30 ms non-preemptible invocations) just past saturation:
    // the backlog stands on 12 agg operators, so FIFO's fair rotation alone
    // costs ~360 ms while Cameo jumps the tenants' window messages ahead.
    opt.ba_msgs_per_sec = 9;
    opt.ba_tuples_per_msg = 20000;
    opt.aggs_per_job = 6;
    opt.tenant_constraint = Millis(250);
    opt.duration = ctx.Dur(Seconds(120), Seconds(16));
    opt.churn.end = opt.duration;
    opt.churn.arrivals_per_sec = ctx.smoke ? 0.5 : 0.25;
    opt.churn.mean_lifetime = ctx.smoke ? Seconds(6) : Seconds(20);
    opt.churn.min_lifetime = Seconds(3);
    opt.churn.max_concurrent = 8;
    ChurnScenarioResult r = RunChurnScenario(opt);

    const std::string sched = ToString(kind);
    for (const char* grp : {"T", "BA"}) {
      PrintRow(sched,
               {grp, FormatMs(r.run.GroupPercentile(grp, 50)),
                FormatMs(r.run.GroupPercentile(grp, 99)),
                FormatPct(r.run.GroupSuccessRate(grp)),
                std::to_string(r.tenants_added),
                std::to_string(r.tenants_departed),
                std::to_string(r.messages_purged)});
      ctx.Metric(sched + "." + grp + ".median_ms",
                 r.run.GroupPercentile(grp, 50));
      ctx.Metric(sched + "." + grp + ".p99_ms",
                 r.run.GroupPercentile(grp, 99));
      ctx.Metric(sched + "." + grp + ".met", r.run.GroupSuccessRate(grp));
    }
    ctx.Metric(sched + ".tenants_added", r.tenants_added);
    ctx.Metric(sched + ".tenants_departed", r.tenants_departed);
    ctx.Metric(sched + ".messages_purged",
               static_cast<double>(r.messages_purged));
  }
}

CAMEO_BENCH_REGISTER("fig17_churn", "Figure 17",
                     "latency-SLO attainment under tenant hot add/remove",
                     Run);

}  // namespace
}  // namespace cameo
