// Figure 1: utilization vs tail latency for slot-based (Flink-style),
// simple-actor (Orleans), and Cameo scheduling. Paper: slot-based systems
// isolate but under-utilize; Orleans utilizes but has high tail latency;
// Cameo achieves both high utilization and low tail latency.
//
// Method: for a fixed multi-tenant workload, find the smallest worker count
// at which the latency-sensitive group's p99 meets its 800 ms target, then
// report the utilization at that provisioning. Fewer workers needed = higher
// utilization at equal service quality.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

RunResult RunAt(const bench::BenchContext& ctx, SchedulerKind kind,
                int workers) {
  MultiTenantOptions opt;
  opt.scheduler = kind;
  opt.workers = workers;
  opt.duration = ctx.Dur(Seconds(40));
  opt.ls_jobs = 4;
  opt.ba_jobs = 8;
  opt.ba_msgs_per_sec = 25;
  return RunMultiTenant(opt);
}

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 1", "utilization vs p99 latency at minimum provisioning",
      "slot-based: low utilization; Orleans: high tail; Cameo: high "
      "utilization and low tail");
  PrintHeaderRow("scheduler",
                 {"min_workers", "utilization", "LS_p99", "LS_median"});
  for (SchedulerKind kind : {SchedulerKind::kSlot, SchedulerKind::kOrleans,
                             SchedulerKind::kFifo, SchedulerKind::kCameo}) {
    int best_workers = -1;
    RunResult best;
    // A 100 ms p99 SLO on the latency-sensitive group: the provisioning a
    // dashboard-style tenant would actually demand.
    const int max_workers = ctx.smoke ? 6 : 16;
    for (int workers = 2; workers <= max_workers; ++workers) {
      RunResult r = RunAt(ctx, kind, workers);
      if (r.GroupPercentile("LS", 99) <= 100.0 &&
          r.GroupSuccessRate("LS") >= 0.99) {
        best_workers = workers;
        best = std::move(r);
        break;
      }
    }
    if (best_workers < 0) {
      PrintRow(ToString(kind), {">" + std::to_string(max_workers), "-", "-",
                                "-"});
      ctx.Metric(ToString(kind) + ".min_workers", -1);
      continue;
    }
    PrintRow(ToString(kind),
             {std::to_string(best_workers), FormatPct(best.utilization),
              FormatMs(best.GroupPercentile("LS", 99)),
              FormatMs(best.GroupPercentile("LS", 50))});
    ctx.Metric(ToString(kind) + ".min_workers", best_workers);
    ctx.Metric(ToString(kind) + ".utilization", best.utilization);
    ctx.Metric(ToString(kind) + ".LS_p99_ms", best.GroupPercentile("LS", 99));
    ctx.Metric(ToString(kind) + ".LS_median_ms",
               best.GroupPercentile("LS", 50));
  }
}

CAMEO_BENCH_REGISTER("fig01_util_latency", "Figure 1",
                     "utilization vs p99 latency at minimum provisioning",
                     Run);

}  // namespace
}  // namespace cameo
