// Figure 6: token-based proportional fair sharing (paper §5.4). Three
// dataflows with 20% / 40% / 40% token shares start staggered; once the
// cluster is at capacity, processed-volume shares must track token shares,
// and the first dataflow gets full capacity while it runs alone.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 6", "proportional fair sharing via tokens (20/40/40)",
      "dataflow 1 gets full capacity alone; at capacity, throughput shares "
      "converge to token shares");
  TokenScenarioOptions opt;
  if (ctx.smoke) {
    opt.stagger = Seconds(6);
    opt.duration = Seconds(30);
  }
  TokenScenarioResult result = RunTokenScenario(opt);

  // Throughput time series, 10 s buckets.
  PrintHeaderRow("t(s)", {"J1_ktuples/s", "J2_ktuples/s", "J3_ktuples/s",
                          "J1_share", "J2_share", "J3_share"});
  const std::size_t n = result.throughput[0].size();
  for (std::size_t b = 0; b + 10 <= n; b += 10) {
    double v[3] = {0, 0, 0};
    for (int j = 0; j < 3; ++j) {
      for (std::size_t i = b; i < b + 10; ++i) {
        v[j] += static_cast<double>(
            result.throughput[static_cast<std::size_t>(j)][i]);
      }
      v[j] /= 10.0;
    }
    double total = v[0] + v[1] + v[2];
    char c0[32], c1[32], c2[32];
    std::snprintf(c0, sizeof(c0), "%.0f", v[0] / 1000);
    std::snprintf(c1, sizeof(c1), "%.0f", v[1] / 1000);
    std::snprintf(c2, sizeof(c2), "%.0f", v[2] / 1000);
    PrintRow(std::to_string(b) + "-" + std::to_string(b + 10),
             {c0, c1, c2, total > 0 ? FormatPct(v[0] / total) : "-",
              total > 0 ? FormatPct(v[1] / total) : "-",
              total > 0 ? FormatPct(v[2] / total) : "-"});
  }

  // Steady-state shares over the fully contended phase (after the last job
  // has arrived and ramped, up to just before the run ends).
  std::size_t from = static_cast<std::size_t>(5 * opt.stagger / (2 * kSecond));
  std::size_t to = static_cast<std::size_t>(opt.duration / kSecond - 5);
  double v[3] = {0, 0, 0}, total = 0;
  for (int j = 0; j < 3; ++j) {
    for (std::size_t i = from; i < to; ++i) {
      v[j] += static_cast<double>(
          result.throughput[static_cast<std::size_t>(j)][i]);
    }
    total += v[j];
  }
  std::printf("steady-state shares (t=%zu..%zu s): %.1f%% / %.1f%% / %.1f%% "
              "(target 20/40/40)\n",
              from, to, 100 * v[0] / total, 100 * v[1] / total,
              100 * v[2] / total);
  for (int j = 0; j < 3; ++j) {
    ctx.Metric("steady_share.J" + std::to_string(j + 1),
               total > 0 ? v[j] / total : 0.0);
  }
  ctx.AddRun("run", result.run);
}

CAMEO_BENCH_REGISTER("fig06_fair_share", "Figure 6",
                     "token-based proportional fair sharing (20/40/40)",
                     Run);

}  // namespace
}  // namespace cameo
