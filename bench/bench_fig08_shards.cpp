// Figure 8 (scale-out panel): weak scaling of the keyed per-user workload
// across simulated machines. Per-shard resources are fixed (4 workers, 2
// sources, 4 counter replicas, 125k users) and the shard count sweeps
// 1 -> 8, so the offered load grows with the cluster: 1M simulated users at
// 8 shards. Cross-shard edges ship serialized frames (src/shard/wire.h)
// over the modeled transport; everything else is the fig_slates pipeline.
//
// Gates (via the `_met_rate`-suffix convention of compare_baselines.py):
//   - per-shard-count deadline-met rate and p99 (deterministic per seed);
//   - `gate.monotone_met_rate`: 1.0 iff served throughput is monotone
//     non-decreasing in the shard count (weak scaling holds);
//   - `gate.parity_met_rate`: 1.0 iff every multi-shard met rate stays
//     within 5 points of the single-shard run (the transport hop must not
//     cost deadlines beyond its modeled link delay).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

constexpr std::int64_t kUsersPerShard = 125'000;

KeyedScenarioOptions PanelOptions(bench::BenchContext& ctx, int shards) {
  KeyedScenarioOptions opt;
  opt.dist = KeyDistribution::kZipf;  // per-user traffic is long-tailed
  opt.zipf_s = 0.9;
  opt.num_keys = kUsersPerShard * shards;
  opt.sources = 2 * shards;
  opt.counters = 4 * shards;
  opt.splits = 2;
  opt.merge_replicas = std::max(2, shards);
  opt.msgs_per_sec = 20;
  opt.tuples_per_msg = 2000;
  opt.counter_per_tuple = 400;  // ns per tuple
  opt.workers = 4;  // per shard
  opt.shards = shards;
  opt.duration = ctx.Dur(Seconds(30), Seconds(3));
  opt.constraint = Millis(800);
  opt.seed = 42;
  return opt;
}

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 8 (scale-out)", "weak scaling across shards (125k users each)",
      "served throughput grows ~linearly with shards; deadline-met rate "
      "stays within 5 points of single-shard");
  PrintHeaderRow("shards", {"users", "met", "p99", "served_tps", "frames",
                            "wire_MB"});

  // Smoke keeps the sweep to 1 + 2 shards so the ctest gate stays fast; the
  // full panel runs the paper-style 1/2/4/8 ladder to 1M users.
  const std::vector<int> counts =
      ctx.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  std::vector<double> served, met;
  for (int shards : counts) {
    const KeyedScenarioOptions opt = PanelOptions(ctx, shards);
    const KeyedScenarioResult r = RunKeyedScenario(opt);
    const double met_rate = r.run.GroupSuccessRate("KEYED");
    const double p99 = r.run.GroupPercentile("KEYED", 99);
    const double tps = r.run.GroupThroughput("KEYED");
    served.push_back(tps);
    met.push_back(met_rate);

    const std::string tag = "s" + std::to_string(shards);
    char mb[32];
    std::snprintf(mb, sizeof(mb), "%.2f",
                  static_cast<double>(r.wire_bytes) / (1024.0 * 1024.0));
    PrintRow(tag, {std::to_string(opt.num_keys), FormatPct(met_rate),
                   FormatMs(p99),
                   std::to_string(static_cast<std::int64_t>(tps)),
                   std::to_string(r.frames_sent), mb});
    ctx.Metric(tag + "_met_rate", met_rate);
    ctx.Metric(tag + "_p99_ms", p99);
    ctx.Metric(tag + ".served_tps", tps);
    ctx.Metric(tag + ".frames_sent", static_cast<double>(r.frames_sent));
    ctx.Metric(tag + ".wire_bytes", static_cast<double>(r.wire_bytes));
    // Placement balance: dispatched-message ratio of the busiest to the
    // average shard (1.0 = perfectly even; informational).
    if (shards > 1 && !r.shard_sched.empty()) {
      std::uint64_t total = 0, peak = 0;
      for (const SchedulerStats& s : r.shard_sched) {
        total += s.dispatched;
        peak = std::max(peak, s.dispatched);
      }
      if (total > 0) {
        ctx.Metric(tag + ".balance_peak_over_mean",
                   static_cast<double>(peak) * shards /
                       static_cast<double>(total));
      }
    }
  }

  // Verdicts. Served throughput is virtual-time deterministic, so monotone
  // means monotone -- the 0.1% slack only forgives float summation order.
  bool monotone = true;
  for (std::size_t i = 1; i < served.size(); ++i) {
    if (served[i] < served[i - 1] * 0.999) monotone = false;
  }
  bool parity = true;
  for (std::size_t i = 1; i < met.size(); ++i) {
    if (met[i] < met[0] - 0.05) parity = false;
  }
  std::printf("scale-out: throughput %s, met-rate parity %s\n",
              monotone ? "monotone" : "NOT monotone",
              parity ? "within 5 points of single-shard"
                     : "NOT within 5 points of single-shard");
  ctx.Metric("gate.monotone_met_rate", monotone ? 1.0 : 0.0);
  ctx.Metric("gate.parity_met_rate", parity ? 1.0 : 0.0);
}

CAMEO_BENCH_REGISTER("fig08_shards", "Figure 8",
                     "weak scaling: keyed per-user workload across 1-8 "
                     "shards with wire-serialized cross-shard edges",
                     Run);

}  // namespace
}  // namespace cameo
