// Figure 4: the paper's worked scheduling example. J1 is a bulk/batch
// analytics dataflow (lax deadline), J2 a latency-sensitive anomaly-detection
// pipeline (strict deadline), sharing one worker. Schedules:
//   (a) fair-share, small quantum  -> J2 misses deadlines
//   (b) fair-share, large quantum  -> J2 misses deadlines
//   (c) Cameo, topology-aware only -> fewer violations
//   (d) Cameo, + query semantics   -> fewest violations
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

RunResult RunConfig(const bench::BenchContext& ctx, SchedulerKind kind,
                    Duration quantum, bool semantics) {
  MultiTenantOptions opt;
  opt.scheduler = kind;
  opt.quantum = quantum;
  opt.use_query_semantics = semantics;
  opt.workers = 1;
  opt.duration = ctx.Dur(Seconds(40));
  opt.ls_jobs = 1;  // J2: latency sensitive
  opt.ba_jobs = 1;  // J1: batch analytics
  opt.sources_per_job = 4;
  opt.aggs_per_job = 2;
  opt.ba_msgs_per_sec = 90;  // keeps the single worker ~80% busy
  return RunMultiTenant(opt);
}

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 4", "scheduling example: J1 batch + J2 latency-sensitive, "
                  "one worker",
      "fair-share schedules (a,b) violate J2's deadline; topology-aware "
      "Cameo (c) reduces violations; semantics-aware Cameo (d) reduces them "
      "further");
  struct Config {
    const char* label;
    SchedulerKind kind;
    Duration quantum;
    bool semantics;
  };
  const Config configs[] = {
      {"(a) fair-share small q", SchedulerKind::kFifo, Millis(1), true},
      {"(b) fair-share large q", SchedulerKind::kFifo, Millis(100), true},
      {"(c) Cameo topology", SchedulerKind::kCameo, Millis(1), false},
      {"(d) Cameo semantics", SchedulerKind::kCameo, Millis(1), true},
  };
  PrintHeaderRow("schedule",
                 {"J2_median", "J2_p99", "J2_deadlines_met", "J1_median"});
  for (const Config& c : configs) {
    RunResult r = RunConfig(ctx, c.kind, c.quantum, c.semantics);
    PrintRow(c.label, {FormatMs(r.GroupPercentile("LS", 50)),
                       FormatMs(r.GroupPercentile("LS", 99)),
                       FormatPct(r.GroupSuccessRate("LS")),
                       FormatMs(r.GroupPercentile("BA", 50))});
    const std::string key(c.label);
    ctx.Metric(key + ".J2_median_ms", r.GroupPercentile("LS", 50));
    ctx.Metric(key + ".J2_p99_ms", r.GroupPercentile("LS", 99));
    ctx.Metric(key + ".J2_deadlines_met", r.GroupSuccessRate("LS"));
    ctx.Metric(key + ".J1_median_ms", r.GroupPercentile("BA", 50));
  }
}

CAMEO_BENCH_REGISTER("fig04_example", "Figure 4",
                     "worked scheduling example: batch + latency-sensitive "
                     "on one worker",
                     Run);

}  // namespace
}  // namespace cameo
