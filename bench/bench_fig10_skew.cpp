// Figure 10: spatial workload variation. Two workload distributions derived
// from the production trace shape: Type 1 has 2x the volume with mild skew;
// Type 2's per-source ingestion rate varies by 200x. Paper success rates:
// Orleans 0.2% / 1.5%, FIFO 7.9% / 9.5%, Cameo 21.3% / 45.5%.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 10", "spatial workload variation (200x source skew)",
      "Cameo sustains the highest deadline success rates; baselines collapse "
      "on the heavy type");
  PrintHeaderRow("scheduler", {"T1_success", "T2_success", "T1_med", "T2_med",
                               "T1_p99"});
  for (SchedulerKind kind : {SchedulerKind::kOrleans, SchedulerKind::kFifo,
                             SchedulerKind::kCameo}) {
    SkewScenarioOptions opt;
    opt.scheduler = kind;
    opt.duration = ctx.Dur(Seconds(60));
    RunResult r = RunSkewedScenario(opt);
    PrintRow(ToString(kind),
             {FormatPct(r.GroupSuccessRate("T1-")),
              FormatPct(r.GroupSuccessRate("T2-")),
              FormatMs(r.GroupPercentile("T1-", 50)),
              FormatMs(r.GroupPercentile("T2-", 50)),
              FormatMs(r.GroupPercentile("T1-", 99))});
    ctx.Metric(ToString(kind) + ".T1_success", r.GroupSuccessRate("T1-"));
    ctx.Metric(ToString(kind) + ".T2_success", r.GroupSuccessRate("T2-"));
    ctx.Metric(ToString(kind) + ".T1_median_ms",
               r.GroupPercentile("T1-", 50));
  }
}

CAMEO_BENCH_REGISTER("fig10_skew", "Figure 10",
                     "spatial workload variation with 200x source skew",
                     Run);

}  // namespace
}  // namespace cameo
