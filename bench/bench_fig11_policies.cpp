// Figure 11, grown into a scheduling-policy tournament. The original figure
// compares LLF vs EDF vs SJF through the pluggable-policy context API
// (§5.3); this bench sweeps *every* registered policy — the sweep derives
// its roster from ValidPolicyNames(), so a policy added to the registry in
// core/policies.cpp shows up here automatically and roster drift (the old
// hard-coded {"LLF","EDF","SJF"} list silently omitting TokenFair) is
// structurally impossible.
//
// Panels:
//   (left)  single-query latency by policy, IPQ 1-4 (the paper's Fig. 11)
//   (right) multi-query latency by policy under near-saturation
//   tournament: the full scenario matrix — steady multi-tenant, data skew
//     (fig10), tenant churn (fig17), keyed hot-key (fig_slates) — per
//     policy, reporting deadline-met rate (gated vs checked-in baselines)
//     and p99 per cell, plus each policy's internal counters.
//
// Paper expectation (Fig. 11): SJF is consistently worse than LLF/EDF under
// load (except lightly-loaded IPQ4 where queueing is absent); EDF and LLF
// perform comparably because operator execution time is small and
// consistent. The tournament checks the SJF-worse-under-load ordering on
// the steady-state cell and prints a verdict.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"
#include "core/policies.h"

namespace cameo {
namespace {

void SingleQuery(bench::BenchContext& ctx) {
  PrintFigureBanner("Figure 11 (left)", "single-query latency by policy",
                    "SJF worse than LLF/EDF (except lightly-loaded IPQ4); "
                    "EDF ~ LLF");
  PrintHeaderRow("query", {"policy", "median", "p99"});
  for (int ipq = 1; ipq <= 4; ++ipq) {
    for (const std::string& policy : ValidPolicyNames()) {
      SingleTenantOptions opt;
      opt.ipq = ipq;
      opt.scheduler = SchedulerKind::kCameo;
      opt.policy = policy;
      opt.workers = 2;
      opt.duration = ctx.Dur(Seconds(40));
      opt.seed = 500 + static_cast<std::uint64_t>(ipq) * 13;
      SingleTenantResult r = RunSingleTenant(opt);
      const JobResult& j = r.run.jobs[0];
      PrintRow("IPQ" + std::to_string(ipq),
               {policy, FormatMs(j.median_ms), FormatMs(j.p99_ms)});
      ctx.Metric("IPQ" + std::to_string(ipq) + "." + policy + ".median_ms",
                 j.median_ms);
    }
  }
}

void MultiQuery(bench::BenchContext& ctx) {
  PrintFigureBanner("Figure 11 (right)", "multi-query latency by policy",
                    "same ordering under multi-tenancy");
  PrintHeaderRow("policy", {"LS_med", "LS_p99", "BA_med", "BA_p99"});
  for (const std::string& policy : ValidPolicyNames()) {
    MultiTenantOptions opt;
    opt.scheduler = SchedulerKind::kCameo;
    opt.policy = policy;
    opt.workers = 4;
    opt.duration = ctx.Dur(Seconds(60));
    opt.ls_jobs = 4;
    opt.ba_jobs = 8;
    opt.ba_msgs_per_sec = 35;  // near saturation
    RunResult r = RunMultiTenant(opt);
    PrintRow(policy, {FormatMs(r.GroupPercentile("LS", 50)),
                      FormatMs(r.GroupPercentile("LS", 99)),
                      FormatMs(r.GroupPercentile("BA", 50)),
                      FormatMs(r.GroupPercentile("BA", 99))});
    ctx.Metric("multi." + policy + ".LS_median_ms",
               r.GroupPercentile("LS", 50));
    ctx.Metric("multi." + policy + ".LS_p99_ms", r.GroupPercentile("LS", 99));
  }
}

/// One tournament cell: the run's deadline-met rate and p99 over the
/// scenario's scored job group, plus the policy counters to surface.
struct CellResult {
  double met_rate = 0;
  double p99_ms = 0;
  std::vector<PolicyCounter> counters;
};

CellResult SteadyCell(bench::BenchContext& ctx, const std::string& policy) {
  MultiTenantOptions opt;
  opt.scheduler = SchedulerKind::kCameo;
  opt.policy = policy;
  opt.workers = 4;
  opt.duration = ctx.Dur(Seconds(30), Seconds(3));
  opt.ls_jobs = 4;
  opt.ba_jobs = 8;
  opt.ba_msgs_per_sec = 35;  // near saturation: ordering decides the tail
  RunResult r = RunMultiTenant(opt);
  return {r.GroupSuccessRate("LS"), r.GroupPercentile("LS", 99),
          r.policy_counters};
}

CellResult SkewCell(bench::BenchContext& ctx, const std::string& policy) {
  SkewScenarioOptions opt;
  opt.scheduler = SchedulerKind::kCameo;
  opt.policy = policy;
  opt.duration = ctx.Dur(Seconds(30), Seconds(3));
  RunResult r = RunSkewedScenario(opt);
  // Score across both tenant types: "" prefixes every job name.
  return {r.GroupSuccessRate(""), r.GroupPercentile("", 99),
          r.policy_counters};
}

CellResult ChurnCell(bench::BenchContext& ctx, const std::string& policy) {
  ChurnScenarioOptions opt;
  opt.scheduler = SchedulerKind::kCameo;
  opt.policy = policy;
  opt.workers = 4;
  opt.ba_msgs_per_sec = 9;
  opt.ba_tuples_per_msg = 20000;
  opt.aggs_per_job = 6;
  opt.tenant_constraint = Millis(250);
  opt.duration = ctx.Dur(Seconds(60), Seconds(8));
  opt.churn.end = opt.duration;
  opt.churn.arrivals_per_sec = ctx.smoke ? 0.5 : 0.25;
  opt.churn.mean_lifetime = ctx.smoke ? Seconds(4) : Seconds(20);
  opt.churn.min_lifetime = Seconds(2);
  opt.churn.max_concurrent = 8;
  ChurnScenarioResult r = RunChurnScenario(opt);
  // Scored on the churned tenants ("T<i>"); the BA background is the load.
  return {r.run.GroupSuccessRate("T"), r.run.GroupPercentile("T", 99),
          r.run.policy_counters};
}

CellResult KeyedCell(bench::BenchContext& ctx, const std::string& policy) {
  KeyedScenarioOptions opt;
  opt.scheduler = SchedulerKind::kCameo;
  opt.policy = policy;
  opt.dist = KeyDistribution::kZipf;  // hot keys: the fig_slates stressor
  opt.num_keys = 50'000;
  opt.zipf_s = 1.1;
  opt.counter_per_tuple = Micros(19);
  opt.splits = 4;
  opt.mini_batch = true;
  opt.duration = ctx.Dur(Seconds(20), Seconds(3));
  KeyedScenarioResult r = RunKeyedScenario(opt);
  return {r.run.GroupSuccessRate("KEYED"), r.run.GroupPercentile("KEYED", 99),
          r.run.policy_counters};
}

using CellFn = CellResult (*)(bench::BenchContext&, const std::string&);

struct Scenario {
  const char* name;
  CellFn run;
};

void Tournament(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Policy tournament", "deadline-met rate per policy x scenario",
      "deadline-aware policies (LLF/EDF) lead under load; SJF trails them "
      "(Fig. 11); fair-share policies trade tail latency for isolation");
  const Scenario kScenarios[] = {
      {"steady", SteadyCell},
      {"skew", SkewCell},
      {"churn", ChurnCell},
      {"keyed", KeyedCell},
  };
  PrintHeaderRow("scenario", {"policy", "met", "p99", "counters"});
  // met[scenario][policy index], for the verdict below.
  std::vector<std::vector<double>> met;
  const std::vector<std::string>& roster = ValidPolicyNames();
  for (const Scenario& scn : kScenarios) {
    met.emplace_back();
    for (const std::string& policy : roster) {
      CellResult cell = scn.run(ctx, policy);
      met.back().push_back(cell.met_rate);
      std::string counters;
      for (const PolicyCounter& c : cell.counters) {
        if (!counters.empty()) counters += ' ';
        counters += c.name + "=" + std::to_string(c.value);
      }
      PrintRow(scn.name,
               {policy, FormatPct(cell.met_rate), FormatMs(cell.p99_ms),
                counters.empty() ? "-" : counters});
      const std::string key = std::string("tourney.") + scn.name + "." + policy;
      // `_met_rate` keys are the gated tournament statistic (deterministic
      // per seed; compare_baselines.py fails a >15% relative drop). The p99
      // companions use a `.p99_ms` (dot) key on purpose: informational only,
      // since several policies are *expected* to trade tail latency.
      ctx.Metric(key + "_met_rate", cell.met_rate);
      ctx.Metric(key + ".p99_ms", cell.p99_ms);
      for (const PolicyCounter& c : cell.counters) {
        ctx.Metric(key + ".counter." + c.name,
                   static_cast<double>(c.value));
      }
    }
  }

  // Verdict: the paper's Fig. 11 ordering — SJF no better than both LLF and
  // EDF on the loaded steady-state cell (strictly worse in full runs; smoke
  // runs are too short to separate policies reliably, so gate "no better").
  auto index_of = [&](const char* name) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (roster[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  const int llf = index_of("LLF"), edf = index_of("EDF"), sjf = index_of("SJF");
  if (llf >= 0 && edf >= 0 && sjf >= 0) {
    const std::vector<double>& steady = met[0];
    const bool ordered =
        steady[sjf] <= steady[llf] && steady[sjf] <= steady[edf];
    std::printf("paper ordering (steady): SJF met %.3f vs LLF %.3f / EDF "
                "%.3f -> %s\n",
                steady[sjf], steady[llf], steady[edf],
                ordered ? "reproduced (SJF trails deadline-aware policies)"
                        : "NOT reproduced");
    ctx.Metric("tourney.verdict.sjf_trails_deadline_aware",
               ordered ? 1.0 : 0.0);
  }
}

void Run(bench::BenchContext& ctx) {
  SingleQuery(ctx);
  MultiQuery(ctx);
  Tournament(ctx);
}

CAMEO_BENCH_REGISTER("fig11_policies", "Figure 11",
                     "policy tournament: every registered policy x scenario "
                     "matrix (steady/skew/churn/keyed)",
                     Run);

}  // namespace
}  // namespace cameo
