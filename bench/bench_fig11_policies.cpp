// Figure 11: pluggable policies -- LLF vs EDF vs SJF, implemented via the
// context API (§5.3). Paper: SJF is consistently worse than LLF/EDF (except
// on lightly-loaded IPQ4 where queueing is absent); EDF and LLF perform
// comparably because operator execution time is small and consistent.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void SingleQuery(bench::BenchContext& ctx) {
  PrintFigureBanner("Figure 11 (left)", "single-query latency by policy",
                    "SJF worse than LLF/EDF (except lightly-loaded IPQ4); "
                    "EDF ~ LLF");
  PrintHeaderRow("query", {"policy", "median", "p99"});
  for (int ipq = 1; ipq <= 4; ++ipq) {
    for (const char* policy : {"LLF", "EDF", "SJF"}) {
      SingleTenantOptions opt;
      opt.ipq = ipq;
      opt.scheduler = SchedulerKind::kCameo;
      opt.policy = policy;
      opt.workers = 2;
      opt.duration = ctx.Dur(Seconds(40));
      opt.seed = 500 + static_cast<std::uint64_t>(ipq) * 13;
      SingleTenantResult r = RunSingleTenant(opt);
      const JobResult& j = r.run.jobs[0];
      PrintRow("IPQ" + std::to_string(ipq),
               {policy, FormatMs(j.median_ms), FormatMs(j.p99_ms)});
      ctx.Metric("IPQ" + std::to_string(ipq) + "." + policy + ".median_ms",
                 j.median_ms);
    }
  }
}

void MultiQuery(bench::BenchContext& ctx) {
  PrintFigureBanner("Figure 11 (right)", "multi-query latency by policy",
                    "same ordering under multi-tenancy");
  PrintHeaderRow("policy", {"LS_med", "LS_p99", "BA_med", "BA_p99"});
  for (const char* policy : {"LLF", "EDF", "SJF"}) {
    MultiTenantOptions opt;
    opt.scheduler = SchedulerKind::kCameo;
    opt.policy = policy;
    opt.workers = 4;
    opt.duration = ctx.Dur(Seconds(60));
    opt.ls_jobs = 4;
    opt.ba_jobs = 8;
    opt.ba_msgs_per_sec = 35;  // near saturation
    RunResult r = RunMultiTenant(opt);
    PrintRow(policy, {FormatMs(r.GroupPercentile("LS", 50)),
                      FormatMs(r.GroupPercentile("LS", 99)),
                      FormatMs(r.GroupPercentile("BA", 50)),
                      FormatMs(r.GroupPercentile("BA", 99))});
    ctx.Metric(std::string("multi.") + policy + ".LS_median_ms",
               r.GroupPercentile("LS", 50));
    ctx.Metric(std::string("multi.") + policy + ".LS_p99_ms",
               r.GroupPercentile("LS", 99));
  }
}

void Run(bench::BenchContext& ctx) {
  SingleQuery(ctx);
  MultiQuery(ctx);
}

CAMEO_BENCH_REGISTER("fig11_policies", "Figure 11",
                     "pluggable policies: LLF vs EDF vs SJF",
                     Run);

}  // namespace
}  // namespace cameo
