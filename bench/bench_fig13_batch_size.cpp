// Figure 13: effect of batch size. Two knobs, two panels.
//  Left: tuples per *message* grow while the overall tuple ingestion rate is
//        held constant. Paper: Group-1 latency is unaffected up to 20K
//        tuples/msg and degrades at 40K+, when large low-priority messages
//        block high-priority ones (non-preemptive execution).
//  Right: the claim-and-drain knob (SchedulerConfig::batch_size, plumbed
//        through the fluent EngineOptions): messages per worker activation.
//        Because Cameo re-checks the ready queue between a batch's messages,
//        latency-sensitive results should stay flat while the per-message
//        dispatch overhead is amortized.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 13", "effect of batch size at constant tuple rate",
      "LS latency flat up to ~20K tuples/msg, degrades beyond (head-of-line "
      "blocking by large non-preemptible messages)");
  const double kTuplesPerSec = 40000;  // per BA source
  PrintHeaderRow("batch", {"BA_msgs/s/src", "LS_med", "LS_p99", "LS_met"});
  const std::vector<std::int64_t> batches =
      ctx.smoke ? std::vector<std::int64_t>{1000, 80000}
                : std::vector<std::int64_t>{1000, 5000, 10000, 20000, 40000,
                                            80000};
  for (std::int64_t batch : batches) {
    MultiTenantOptions opt;
    opt.scheduler = SchedulerKind::kCameo;
    opt.workers = 4;
    opt.duration = ctx.Dur(Seconds(60));
    opt.ls_jobs = 4;
    opt.ba_jobs = 8;
    opt.ba_tuples_per_msg = batch;
    opt.ba_msgs_per_sec = kTuplesPerSec / static_cast<double>(batch);
    // A 100 ms target makes the head-of-line degradation visible as missed
    // deadlines once messages grow past ~20K tuples.
    opt.ls_constraint = Millis(100);
    RunResult r = RunMultiTenant(opt);
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.2f", opt.ba_msgs_per_sec);
    PrintRow(std::to_string(batch),
             {rate, FormatMs(r.GroupPercentile("LS", 50)),
              FormatMs(r.GroupPercentile("LS", 99)),
              FormatPct(r.GroupSuccessRate("LS"))});
    const std::string key = "batch" + std::to_string(batch);
    ctx.Metric(key + ".LS_median_ms", r.GroupPercentile("LS", 50));
    ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
    ctx.Metric(key + ".LS_success", r.GroupSuccessRate("LS"));
  }

  // Right panel: drain batch size at fixed message size. Swept through the
  // unified EngineOptions/QueryDef pipeline -- MultiTenantOptions.sched_batch
  // lands in EngineOptions::sched.batch_size for whichever backend runs.
  std::printf("\n--- claim-and-drain batch (messages per activation) ---\n");
  PrintHeaderRow("drain", {"LS_med", "LS_p99", "LS_met"});
  const std::vector<int> drains =
      ctx.smoke ? std::vector<int>{1, 16} : std::vector<int>{1, 4, 16, 64};
  for (int drain : drains) {
    MultiTenantOptions opt;
    opt.scheduler = SchedulerKind::kCameo;
    opt.workers = 4;
    opt.duration = ctx.Dur(Seconds(60));
    opt.ls_jobs = 4;
    opt.ba_jobs = 8;
    opt.ba_tuples_per_msg = 1000;
    opt.ba_msgs_per_sec = kTuplesPerSec / 1000.0;
    opt.ls_constraint = Millis(100);
    opt.sched_batch = drain;
    RunResult r = RunMultiTenant(opt);
    PrintRow(std::to_string(drain),
             {FormatMs(r.GroupPercentile("LS", 50)),
              FormatMs(r.GroupPercentile("LS", 99)),
              FormatPct(r.GroupSuccessRate("LS"))});
    const std::string key = "drain" + std::to_string(drain);
    ctx.Metric(key + ".LS_median_ms", r.GroupPercentile("LS", 50));
    ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
    ctx.Metric(key + ".LS_success", r.GroupSuccessRate("LS"));
  }
}

CAMEO_BENCH_REGISTER("fig13_batch_size", "Figure 13",
                     "effect of batch size at constant tuple rate",
                     Run);

}  // namespace
}  // namespace cameo
