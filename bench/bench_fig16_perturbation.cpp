// Figure 16: robustness to cost-profiling inaccuracy. Measured operator
// costs are perturbed by N(0, sigma) when read for priority generation.
// Paper: stable at the median for sigma up to the window size (1 s); the
// 90th percentile rises only ~55% at sigma = 1 s; robust when sigma <=
// 100 ms.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 16", "effect of profiling inaccuracy (N(0, sigma) on C_oM)",
      "median stable across sigma; tail degrades modestly near sigma = "
      "window size");
  PrintHeaderRow("sigma", {"grp", "median", "p90", "p99", "met"});
  for (Duration sigma : {Duration{0}, Millis(1), Millis(100), Millis(1000)}) {
    MultiTenantOptions opt;
    opt.scheduler = SchedulerKind::kCameo;
    opt.perturbation = sigma;
    opt.workers = 4;
    opt.duration = ctx.Dur(Seconds(60));
    opt.ls_jobs = 4;
    opt.ba_jobs = 8;
    opt.ba_msgs_per_sec = 35;
    RunResult r = RunMultiTenant(opt);
    std::string label = sigma == 0 ? "0" : FormatMs(ToMillis(sigma));
    for (const char* grp : {"LS", "BA"}) {
      PrintRow(label, {grp, FormatMs(r.GroupPercentile(grp, 50)),
                       FormatMs(r.GroupPercentile(grp, 90)),
                       FormatMs(r.GroupPercentile(grp, 99)),
                       FormatPct(r.GroupSuccessRate(grp))});
      const std::string key = "sigma" +
                              std::to_string(sigma / kMillisecond) + "ms." +
                              grp;
      ctx.Metric(key + ".median_ms", r.GroupPercentile(grp, 50));
      ctx.Metric(key + ".p90_ms", r.GroupPercentile(grp, 90));
    }
  }
}

CAMEO_BENCH_REGISTER("fig16_perturbation", "Figure 16",
                     "robustness to cost-profiling inaccuracy",
                     Run);

}  // namespace
}  // namespace cameo
