// Figure 7: single-tenant experiments, queries IPQ1-IPQ4.
//  (a) median/p99 latency per query per scheduler. Paper: Cameo improves
//      median by up to 2.7x and tail by up to 3.2x; Orleans is competitive
//      on IPQ4 (locality-friendly heavy join).
//  (b) latency CDF for IPQ1.
//  (c) operator schedule timeline: Cameo separates windows cleanly; Orleans
//      and FIFO interleave next-window work before the current window done.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

SingleTenantResult RunOne(const bench::BenchContext& ctx, int ipq,
                          SchedulerKind kind, bool timeline = false) {
  SingleTenantOptions opt;
  opt.ipq = ipq;
  opt.scheduler = kind;
  opt.workers = 2;
  opt.duration = ctx.Dur(Seconds(80), Seconds(8));
  opt.enable_timeline = timeline;
  opt.seed = 1000 + static_cast<std::uint64_t>(ipq) * 7;
  return RunSingleTenant(opt);
}

void LatencyTable(bench::BenchContext& ctx) {
  PrintFigureBanner("Figure 7(a)", "single-tenant query latency",
                    "Cameo improves median up to 2.7x and tail up to 3.2x; "
                    "Orleans nearly matches Cameo on IPQ4");
  PrintHeaderRow("query", {"scheduler", "median", "p95", "p99"});
  for (int ipq = 1; ipq <= 4; ++ipq) {
    for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kOrleans,
                               SchedulerKind::kFifo}) {
      SingleTenantResult r = RunOne(ctx, ipq, kind);
      const JobResult& j = r.run.jobs[0];
      PrintRow("IPQ" + std::to_string(ipq),
               {ToString(kind), FormatMs(j.median_ms), FormatMs(j.p95_ms),
                FormatMs(j.p99_ms)});
      const std::string key = "IPQ" + std::to_string(ipq) + "." +
                              ToString(kind);
      ctx.Metric(key + ".median_ms", j.median_ms);
      ctx.Metric(key + ".p99_ms", j.p99_ms);
    }
  }
}

void Cdf(bench::BenchContext& ctx) {
  PrintFigureBanner("Figure 7(b)", "latency CDF (IPQ1)",
                    "Orleans ~3x Cameo; FIFO matches Cameo's median but has "
                    "an Orleans-like tail");
  for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kOrleans,
                             SchedulerKind::kFifo}) {
    SingleTenantResult r = RunOne(ctx, 1, kind);
    PrintCdf(r.latency, ToString(kind), 10);
  }
}

void TimelineSample(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 7(c)", "operator schedule timeline (IPQ1, first 3 windows)",
      "Cameo separates windows cleanly; baselines interleave next-window "
      "messages before the current window finishes");
  for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kFifo}) {
    SingleTenantResult r = RunOne(ctx, 1, kind, /*timeline=*/true);
    std::printf("%s: time_ms stage window_boundary_s (first 40 dispatches "
                "after t=2s)\n",
                ToString(kind).c_str());
    int printed = 0;
    // Count inversions: a dispatch whose window boundary is *later* than a
    // pending earlier boundary indicates cross-window interleaving.
    std::int64_t max_boundary_seen = 0;
    int inversions = 0, considered = 0;
    for (const DispatchRecord& d : r.timeline) {
      if (d.time < Seconds(2)) continue;
      std::int64_t boundary = d.progress / kSecond;
      if (printed < 40) {
        std::printf("  %8.1f  stage%lld  w%lld\n", ToMillis(d.time),
                    static_cast<long long>(d.stage.value),
                    static_cast<long long>(boundary));
        ++printed;
      }
      ++considered;
      if (boundary < max_boundary_seen) ++inversions;
      max_boundary_seen = std::max(max_boundary_seen, boundary);
      if (considered > 2000) break;
    }
    std::printf("%s cross-window inversions: %d / %d dispatches\n\n",
                ToString(kind).c_str(), inversions, considered);
    ctx.Metric("timeline." + ToString(kind) + ".inversions", inversions);
  }
}

void Run(bench::BenchContext& ctx) {
  LatencyTable(ctx);
  Cdf(ctx);
  TimelineSample(ctx);
}

CAMEO_BENCH_REGISTER("fig07_single_tenant", "Figure 7",
                     "single-tenant IPQ1-IPQ4 latency, CDF and timeline",
                     Run);

}  // namespace
}  // namespace cameo
