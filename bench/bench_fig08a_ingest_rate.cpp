// Figure 8(a): latency-sensitive (Group 1) jobs under competing bulk-
// analytics (Group 2) traffic, sweeping the BA jobs' per-source ingestion
// rate. Paper: all three strategies comparable at low rates; past the
// saturation point Orleans is worse than Cameo by up to 1.6x (median) /
// 1.5x (p99) and FIFO by up to 2x / 1.8x, while Cameo stays stable.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 8(a)", "LS latency vs Group-2 ingestion rate",
      "comparable until saturation; beyond it Orleans/FIFO degrade 1.5-2x "
      "at median and tail while Cameo stays stable");

  const double kTuplesPerMsg = 1000;
  PrintHeaderRow("scheduler", {"BA_ktuples/s/src", "LS_med", "LS_p99",
                               "BA_med", "BA_p99", "util"});
  const std::vector<double> rates =
      ctx.smoke ? std::vector<double>{10.0, 50.0}
                : std::vector<double>{10.0, 20.0, 30.0, 40.0, 50.0};
  for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kOrleans,
                             SchedulerKind::kFifo}) {
    for (double rate : rates) {
      MultiTenantOptions opt;
      opt.scheduler = kind;
      opt.workers = 4;
      opt.duration = ctx.Dur(Seconds(60));
      opt.ls_jobs = 4;
      opt.ba_jobs = 8;
      opt.ba_msgs_per_sec = rate;
      opt.ba_tuples_per_msg = static_cast<std::int64_t>(kTuplesPerMsg);
      RunResult r = RunMultiTenant(opt);
      char label[64];
      std::snprintf(label, sizeof(label), "%s", ToString(kind).c_str());
      char rate_col[32];
      std::snprintf(rate_col, sizeof(rate_col), "%.0f",
                    rate * kTuplesPerMsg / 1000);
      PrintRow(label, {rate_col, FormatMs(r.GroupPercentile("LS", 50)),
                       FormatMs(r.GroupPercentile("LS", 99)),
                       FormatMs(r.GroupPercentile("BA", 50)),
                       FormatMs(r.GroupPercentile("BA", 99)),
                       FormatPct(r.utilization)});
      const std::string key =
          ToString(kind) + ".rate" + std::to_string(static_cast<int>(rate));
      ctx.Metric(key + ".LS_median_ms", r.GroupPercentile("LS", 50));
      ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
      ctx.Metric(key + ".utilization", r.utilization);
    }
  }
}

CAMEO_BENCH_REGISTER("fig08a_ingest_rate", "Figure 8(a)",
                     "LS latency vs competing Group-2 ingestion rate",
                     Run);

}  // namespace
}  // namespace cameo
