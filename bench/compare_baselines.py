#!/usr/bin/env python3
"""Bench regression gate: diff fresh --smoke JSONs against bench/baselines/.

Usage:
    compare_baselines.py --results <dir> [--baselines <dir>]
                         [--threshold 0.15] [--list]

For every BENCH_<name>.json in --results that has at least one baseline
BENCH_<name>.<tag>.json checked in, the newest baseline (highest tag in
natural order, so pr10 > pr5) is loaded and the *gated* metrics are
compared:

  - virtual-time metrics (keys ending in `_median_ms` / `_p99_ms`): these
    are deterministic for a fixed seed, so they are gated at `threshold`
    exactly -- any drift means the schedule itself changed.
  - wall-clock metrics (keys ending in `.ns_per_op` / `.ns_per_msg`): only
    gated when --gate-wall is passed, at 3x `threshold`. Checked-in wall
    baselines are only meaningful on the box that recorded them (a CI
    runner of a different CPU class would fail -- or vacuously pass --
    every run), so the default ctest/CI gate covers virtual-time metrics
    only; run with --gate-wall on the recording box for perf PRs.
  - `.min` companions (from --repeat runs) are ignored; the median is the
    gated statistic.

Deadline-met-rate metrics (keys ending in `_met_rate`, fractions in [0,1])
are deterministic for a fixed seed and gate in the *opposite* direction: a
fresh value below baseline * (1 - threshold) is a regression (higher is
better). Other success-rate/throughput metrics are deliberately not gated
here (workload-semantics changes move them legitimately); the replay golden
tests gate semantics.

Exit status: 0 when no gated metric regressed, 1 otherwise, 2 on usage
errors. Intended to run as the `bench_compare_baselines` ctest (label
bench-smoke) after the per-figure smoke tests have produced their JSONs.
"""

import argparse
import json
import re
import sys
from pathlib import Path

SIM_SUFFIXES = ("_median_ms", "_p99_ms")      # deterministic virtual time
WALL_SUFFIXES = (".ns_per_op", ".ns_per_msg", ".ns_per_row")  # noisy real time
# Counting-allocator metrics: deterministic and expected to be exactly zero
# (the zero-allocation steady-state claim), so they gate absolutely -- any
# fresh allocation over the baseline count is a regression, even from a
# zero baseline (which the relative gate below would have to skip).
ALLOC_SUFFIXES = ("_allocs_per_msg",)
# Deadline-met rates: deterministic fractions in [0, 1] where *higher* is
# better, so the gate fires on a relative decrease instead of an increase.
MET_SUFFIXES = ("_met_rate",)
WALL_SLACK = 3.0


def is_alloc_metric(key: str) -> bool:
    return any(key.endswith(s) for s in ALLOC_SUFFIXES)


def is_met_metric(key: str) -> bool:
    return any(key.endswith(s) for s in MET_SUFFIXES)


def gate_budget(key: str, threshold: float, gate_wall: bool):
    """The allowed relative increase for `key`, or None when not gated."""
    if key.endswith(".min"):
        return None
    if is_alloc_metric(key):
        return 0.0  # absolute gate, handled separately from the ratio path
    if is_met_metric(key):
        return threshold  # gated on *decrease*, handled in the main loop
    if any(key.endswith(s) for s in SIM_SUFFIXES):
        return threshold
    if gate_wall and any(key.endswith(s) for s in WALL_SUFFIXES):
        return threshold * WALL_SLACK
    return None


def load_metrics(path: Path) -> dict:
    with open(path) as f:
        doc = json.load(f)
    return {k: v for k, v in doc.get("metrics", {}).items()
            if isinstance(v, (int, float))}


def natural_key(tag: str):
    """Sort key treating digit runs numerically, so pr10-x > pr5-pooled."""
    return [(0, int(part)) if part.isdigit() else (1, part)
            for part in re.split(r"(\d+)", tag)]


def newest_baseline(baseline_dir: Path, bench: str):
    pattern = re.compile(rf"^BENCH_{re.escape(bench)}\.(?P<tag>.+)\.json$")
    candidates = []
    for p in baseline_dir.glob(f"BENCH_{bench}.*.json"):
        m = pattern.match(p.name)
        if m:
            candidates.append((m.group("tag"), p))
    if not candidates:
        return None, None
    tag, path = max(candidates, key=lambda c: natural_key(c[0]))
    return tag, path


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--results", required=True,
                    help="directory holding fresh BENCH_<name>.json files")
    ap.add_argument("--baselines", default=str(Path(__file__).parent / "baselines"),
                    help="directory holding BENCH_<name>.<tag>.json baselines")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative regression budget (default 0.15 = 15%%)")
    ap.add_argument("--list", action="store_true",
                    help="print every gated comparison, not just regressions")
    ap.add_argument("--gate-wall", action="store_true",
                    help="also gate wall-clock ns/op metrics (same-box only)")
    args = ap.parse_args()

    results_dir = Path(args.results)
    baseline_dir = Path(args.baselines)
    if not results_dir.is_dir():
        print(f"error: results dir {results_dir} does not exist", file=sys.stderr)
        return 2
    if not baseline_dir.is_dir():
        print(f"error: baselines dir {baseline_dir} does not exist", file=sys.stderr)
        return 2

    regressions = []
    compared_any = False
    for result_path in sorted(results_dir.glob("BENCH_*.json")):
        bench = result_path.stem[len("BENCH_"):]
        tag, baseline_path = newest_baseline(baseline_dir, bench)
        if baseline_path is None:
            continue
        fresh = load_metrics(result_path)
        base = load_metrics(baseline_path)
        def budget_of(k):
            return gate_budget(k, args.threshold, args.gate_wall)

        shared = [(k, budget_of(k)) for k in fresh
                  if k in base and budget_of(k) is not None]
        # A gated metric that existed in the baseline but vanished from the
        # fresh run is a gate hole, not a pass: fail it like a regression.
        missing = [k for k in base
                   if k not in fresh and budget_of(k) is not None]
        if not shared and not missing:
            continue
        compared_any = True
        for key in missing:
            print(f"  REGRESSION {key}: present in baseline '{tag}' but "
                  f"missing from fresh results")
            regressions.append((bench, key, base[key], float("nan"), 1.0))
        print(f"== {bench}: vs baseline '{tag}' "
              f"({len(shared)} gated metrics, budget +{args.threshold:.0%}, "
              f"wall-clock x{WALL_SLACK:.0f})")
        for key, budget in shared:
            b, f = base[key], fresh[key]
            if is_alloc_metric(key):
                regressed = f > b + 1e-9
                verdict = "REGRESSION" if regressed else "ok"
                if regressed or args.list:
                    print(f"  {verdict:10s} {key}: baseline {b:.3f} -> {f:.3f} "
                          f"(absolute zero-tolerance gate)")
                if regressed:
                    regressions.append((bench, key, b, f, f - b))
                continue
            if b <= 0:
                continue
            if is_met_metric(key):
                ratio = (f - b) / b
                regressed = f < b * (1.0 - budget)
                verdict = "REGRESSION" if regressed else "ok"
                if regressed or args.list:
                    print(f"  {verdict:10s} {key}: baseline {b:.3f} -> {f:.3f} "
                          f"({ratio:+.1%}, budget -{budget:.0%}, "
                          f"higher is better)")
                if regressed:
                    regressions.append((bench, key, b, f, ratio))
                continue
            ratio = (f - b) / b
            verdict = "REGRESSION" if ratio > budget else "ok"
            if verdict == "REGRESSION" or args.list:
                print(f"  {verdict:10s} {key}: baseline {b:.3f} -> {f:.3f} "
                      f"({ratio:+.1%}, budget +{budget:.0%})")
            if verdict == "REGRESSION":
                regressions.append((bench, key, b, f, ratio))

    if not compared_any:
        print("error: no result/baseline pairs with gated metrics found",
              file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} gated metric(s) regressed past "
              f"+{args.threshold:.0%}:")
        for bench, key, b, f, ratio in regressions:
            print(f"  {bench}:{key} {b:.3f} -> {f:.3f} ({ratio:+.1%})")
        return 1
    print("\nall gated metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
