// Figure 8(b): latency-sensitive jobs under an increasing *number* of
// bulk-analytics tenants. Paper: comparable up to ~12 Group-2 jobs; beyond,
// Orleans is worse than Cameo by up to 2.2x/2.8x (median/p99) and FIFO by up
// to 4.6x/13.6x, while Cameo stays stable.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 8(b)", "LS latency vs number of Group-2 tenants",
      "comparable until ~12 tenants; beyond, FIFO degrades most, Orleans "
      "next, Cameo stays stable");
  PrintHeaderRow("scheduler",
                 {"BA_jobs", "LS_med", "LS_p99", "BA_med", "util"});
  const std::vector<int> tenant_counts =
      ctx.smoke ? std::vector<int>{4, 20} : std::vector<int>{4, 8, 12, 16, 20};
  for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kOrleans,
                             SchedulerKind::kFifo}) {
    for (int tenants : tenant_counts) {
      MultiTenantOptions opt;
      opt.scheduler = kind;
      opt.workers = 4;
      opt.duration = ctx.Dur(Seconds(60));
      opt.ls_jobs = 4;
      opt.ba_jobs = tenants;
      opt.ba_msgs_per_sec = 20;
      RunResult r = RunMultiTenant(opt);
      PrintRow(ToString(kind),
               {std::to_string(tenants),
                FormatMs(r.GroupPercentile("LS", 50)),
                FormatMs(r.GroupPercentile("LS", 99)),
                FormatMs(r.GroupPercentile("BA", 50)),
                FormatPct(r.utilization)});
      const std::string key =
          ToString(kind) + ".tenants" + std::to_string(tenants);
      ctx.Metric(key + ".LS_median_ms", r.GroupPercentile("LS", 50));
      ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
    }
  }
}

CAMEO_BENCH_REGISTER("fig08b_tenants", "Figure 8(b)",
                     "LS latency vs number of Group-2 tenants",
                     Run);

}  // namespace
}  // namespace cameo
