// Figure 9: latency under Pareto (power-law) event arrival. Paper: Cameo's
// latency timeline is far more stable than Orleans' and FIFO's; it reduces
// (median, p99) latency by (3.9x, 29.7x) vs Orleans and (1.3x, 21.1x) vs
// FIFO, with 23.2x / 12.7x lower standard deviation; transient bursts under
// FIFO spill across collocated jobs.
#include <algorithm>
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

RunResult RunPareto(const bench::BenchContext& ctx, SchedulerKind kind,
                    std::vector<std::pair<SimTime, Duration>>* series) {
  MultiTenantOptions opt;
  opt.scheduler = kind;
  opt.workers = 4;
  opt.duration = ctx.Dur(Seconds(120), Seconds(8));
  opt.ls_jobs = 4;
  opt.ba_jobs = 8;
  opt.ba_arrivals = ArrivalKind::kPareto;
  opt.pareto_alpha = 1.4;
  opt.ba_msgs_per_sec = 18;  // mean ~75% utilization, bursts overload
  RunResult r = RunMultiTenant(opt);
  (void)series;
  return r;
}

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 9", "latency under Pareto event arrival",
      "Cameo's LS latency stays stable through bursts; baselines spike by "
      "orders of magnitude and have 10-20x higher stdev");
  struct Row {
    std::string name;
    RunResult r;
  };
  std::vector<Row> rows;
  for (SchedulerKind kind : {SchedulerKind::kOrleans, SchedulerKind::kFifo,
                             SchedulerKind::kCameo}) {
    rows.push_back({ToString(kind), RunPareto(ctx, kind, nullptr)});
  }

  PrintHeaderRow("scheduler", {"grp", "median", "p99", "stdev", "max"});
  for (const Row& row : rows) {
    for (const char* grp : {"LS", "BA"}) {
      double sd = 0, mx = 0;
      for (const auto& j : row.r.jobs) {
        if (j.name.rfind(grp, 0) != 0) continue;
        sd = std::max(sd, j.stdev_ms);
        mx = std::max(mx, j.max_ms);
      }
      PrintRow(row.name, {grp, FormatMs(row.r.GroupPercentile(grp, 50)),
                          FormatMs(row.r.GroupPercentile(grp, 99)),
                          FormatMs(sd), FormatMs(mx)});
    }
  }

  // Ratios the paper headlines (Group 1).
  auto find = [&](const std::string& n) -> const RunResult& {
    for (const Row& r : rows) {
      if (r.name == n) return r.r;
    }
    return rows[0].r;
  };
  const RunResult& cameo = find("Cameo");
  const RunResult& orleans = find("Orleans");
  const RunResult& fifo = find("FIFO");
  std::printf(
      "\nLS ratios vs Cameo -- Orleans: median %.1fx p99 %.1fx | FIFO: "
      "median %.1fx p99 %.1fx\n",
      orleans.GroupPercentile("LS", 50) / cameo.GroupPercentile("LS", 50),
      orleans.GroupPercentile("LS", 99) / cameo.GroupPercentile("LS", 99),
      fifo.GroupPercentile("LS", 50) / cameo.GroupPercentile("LS", 50),
      fifo.GroupPercentile("LS", 99) / cameo.GroupPercentile("LS", 99));
  for (const Row& row : rows) {
    ctx.Metric(row.name + ".LS_median_ms", row.r.GroupPercentile("LS", 50));
    ctx.Metric(row.name + ".LS_p99_ms", row.r.GroupPercentile("LS", 99));
  }
  ctx.Metric("orleans_over_cameo.LS_p99",
             orleans.GroupPercentile("LS", 99) /
                 cameo.GroupPercentile("LS", 99));
  ctx.Metric("fifo_over_cameo.LS_p99",
             fifo.GroupPercentile("LS", 99) / cameo.GroupPercentile("LS", 99));
}

CAMEO_BENCH_REGISTER("fig09_pareto", "Figure 9",
                     "latency stability under Pareto (bursty) arrivals",
                     Run);

}  // namespace
}  // namespace cameo
