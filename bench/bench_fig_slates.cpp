// Keyed slate state at scale: ns/row and deadline-met rate for the per-user
// counter as the live-key population grows 10k -> 1M and key skew grows
// Zipf s 0 -> 1.5.
//
// Three parts:
//  1. Slate microbench: KeyedCounterOp driven directly with uniform keyed
//     batches at each population size. The comparator is the row-wise
//     std::map reference (one ordered-map probe per row, per-window key
//     maps); every run is checked bit-identical against it -- same window
//     emissions, same late drops -- before its timing is reported. The
//     steady-state segment is also watched by this TU's counting global
//     operator new: `slates_<N>_allocs_per_msg` must stay 0 (the pooled
//     slab store, timer wheel, and recycled batch columns cover the whole
//     message lifecycle).
//  2. Scenario sweeps (full simulator, job "KEYED"): deadline-met rate and
//     p99 vs key count (uniform keys) and vs Zipf skew, the latter run both
//     unmitigated (splits=1, no mini-batching) and mitigated (hot-key
//     splitting x4 + per-key mini-batching). The headline: at s >= 1.2 the
//     unmitigated hot shard saturates and its queue grows without bound,
//     while splitting spreads the hot key across sub-keys that a downstream
//     per-key merge recombines.
//  3. CheetahGIS-style spatial grid: random walkers over a cell grid with a
//     hotspot drift, keyed by cell id -- the paper's motivating workload
//     shape (moving hotspots, long-tail cell popularity).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <utility>
#include <vector>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"
#include "common/check.h"
#include "common/rng.h"
#include "state/keyed_counter.h"

// ---------------------------------------------------------------------------
// Counting global allocator (alloc_test-style), so the bench can report
// allocations per steady-state message instead of inferring them.
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::int64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cameo {
namespace {

using clock_type = std::chrono::steady_clock;

std::int64_t HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Part 1: slate store microbench vs the row-wise std::map reference.
// ---------------------------------------------------------------------------

constexpr LogicalTime kWindow = 256;
constexpr int kRowsPerBatch = 512;
constexpr LogicalTime kTickStride = 64;  // batch progress stride

/// The traffic for one population size: a sequential cover pass (inserts
/// every key once), a random warm segment (wraps the timer-wheel ring and
/// reaches every buffer's high-water mark), then the measured segment.
struct Traffic {
  std::vector<EventBatch> batches;
  std::size_t measure_from = 0;
  std::int64_t measured_rows = 0;
};

Traffic MakeTraffic(std::int64_t num_keys, int measured_batches,
                    std::uint64_t seed) {
  Traffic tr;
  Rng rng(seed);
  LogicalTime p = 0;
  auto push = [&](bool sequential, std::int64_t base) {
    p += kTickStride;
    EventBatch b;
    for (int i = 0; i < kRowsPerBatch; ++i) {
      const std::int64_t key = sequential
                                   ? (base + i) % num_keys
                                   : rng.UniformInt(0, num_keys - 1);
      // Random-segment event times trail progress a little, so some rows
      // land in already-closed windows and exercise the late-drop path. The
      // cover pass stays on-time so every key really gets a slate.
      const LogicalTime t =
          sequential ? p
                     : std::max<LogicalTime>(1, p - rng.UniformInt(0, 96));
      b.Append(key, 1.0, t);
    }
    b.progress = p;
    tr.batches.push_back(std::move(b));
  };
  for (std::int64_t base = 0; base < num_keys; base += kRowsPerBatch) {
    push(/*sequential=*/true, base);
  }
  for (int i = 0; i < 600; ++i) push(/*sequential=*/false, 0);
  tr.measure_from = tr.batches.size();
  for (int i = 0; i < measured_batches; ++i) push(/*sequential=*/false, 0);
  tr.measured_rows =
      static_cast<std::int64_t>(measured_batches) * kRowsPerBatch;
  return tr;
}

/// (window end) -> sorted (key, count) rows, the comparable emission shape.
using EmissionMap =
    std::map<LogicalTime, std::vector<std::pair<std::int64_t, double>>>;

class DrainEmitter final : public Emitter {
 public:
  void Emit(int /*port*/, EventBatch batch, SimTime /*event_time*/) override {
    ++batches;
    batch.Recycle();
  }
  std::int64_t batches = 0;
};

class CaptureEmitter final : public Emitter {
 public:
  void Emit(int /*port*/, EventBatch batch, SimTime /*event_time*/) override {
    if (!batch.keys.empty()) {  // skip trailing progress-only batches
      auto& rows = windows[batch.progress];
      for (std::size_t i = 0; i < batch.keys.size(); ++i) {
        rows.emplace_back(batch.keys[i], batch.values[i]);
      }
    }
    batch.Recycle();
  }
  EmissionMap windows;
};

/// Drives `op` over batches [from, to); batches are moved into the message
/// and back out, so the traffic vector survives for the reference leg and
/// the drive itself performs no copies.
double DriveOp(KeyedCounterOp& op, std::vector<EventBatch>& batches,
               std::size_t from, std::size_t to, Emitter& emitter,
               std::int64_t rows) {
  Rng rng(3);
  InvokeContext ctx{0, &emitter, &rng};
  const auto t0 = clock_type::now();
  for (std::size_t i = from; i < to; ++i) {
    Message m;
    m.id = MessageId{static_cast<std::int64_t>(i)};
    m.sender = OperatorId{1};
    m.batch = std::move(batches[i]);
    op.Invoke(m, ctx);
    batches[i] = std::move(m.batch);
  }
  const auto t1 = clock_type::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count() /
         static_cast<double>(rows);
}

/// Row-wise std::map reference with the operator's exact semantics:
/// inclusive-right tumbling windows, fold-before-watermark late policy,
/// sorted-by-key emission once the watermark passes a window's end.
struct MapReference {
  std::map<LogicalTime, std::map<std::int64_t, double>> open;
  EmissionMap out;
  LogicalTime wm = -1;
  std::int64_t late = 0;

  void Consume(const EventBatch& b) {
    for (std::size_t i = 0; i < b.keys.size(); ++i) {
      const LogicalTime t = b.times[i];
      const LogicalTime end = ((t + kWindow - 1) / kWindow) * kWindow;
      if (end <= wm) {
        ++late;
        continue;
      }
      open[end][b.keys[i]] += b.values[i];
    }
    wm = std::max(wm, b.progress);
    while (!open.empty() && open.begin()->first <= wm) {
      auto& rows = out[open.begin()->first];
      for (const auto& [k, v] : open.begin()->second) rows.emplace_back(k, v);
      open.erase(open.begin());
    }
  }
};

double DriveReference(MapReference& ref, const std::vector<EventBatch>& batches,
                      std::size_t from, std::size_t to, std::int64_t rows) {
  const auto t0 = clock_type::now();
  for (std::size_t i = from; i < to; ++i) ref.Consume(batches[i]);
  const auto t1 = clock_type::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count() /
         static_cast<double>(rows);
}

void CheckEmissionsEqual(const EmissionMap& op, const EmissionMap& ref) {
  CAMEO_CHECK(op.size() == ref.size());
  auto io = op.begin();
  auto ir = ref.begin();
  for (; io != op.end(); ++io, ++ir) {
    CAMEO_CHECK(io->first == ir->first);
    CAMEO_CHECK(io->second == ir->second);  // bit-identical, not approximate
  }
}

void RunSlateMicrobench(bench::BenchContext& ctx) {
  const std::vector<std::int64_t> populations =
      ctx.smoke ? std::vector<std::int64_t>{10'000, 100'000}
                : std::vector<std::int64_t>{10'000, 100'000, 1'000'000};
  const int measured_batches = ctx.smoke ? 400 : 2000;

  std::printf(
      "--- slate store vs row-wise std::map (%d-row batches, tumbling %lld) "
      "---\n",
      kRowsPerBatch, static_cast<long long>(kWindow));
  std::printf("%10s %12s %12s %8s %12s %12s %9s\n", "keys", "map ns/row",
              "slate ns/row", "speedup", "map al/msg", "slate al/msg",
              "rehashes");

  for (const std::int64_t num_keys : populations) {
    Traffic tr = MakeTraffic(num_keys, measured_batches, /*seed=*/17);

    // Equivalence run: the whole stream through a fresh operator and the
    // reference; every window emission must match bit-exactly.
    KeyedCounterOptions opts;
    opts.mini_batch = true;
    {
      KeyedCounterOp eq_op("slates_eq", WindowSpec::Tumbling(kWindow),
                           {0, 0, 0.0}, opts);
      CaptureEmitter capture;
      DriveOp(eq_op, tr.batches, 0, tr.batches.size(), capture, 1);
      MapReference ref;
      DriveReference(ref, tr.batches, 0, tr.batches.size(), 1);
      CheckEmissionsEqual(capture.windows, ref.out);
      CAMEO_CHECK(eq_op.late_dropped() == ref.late);
    }

    // Timing run: warm (cover + warm segment) untimed, then the measured
    // segment timed and allocation-counted. Mini-batching is off here: it is
    // a skew mitigation (measured in the Zipf sweep below), pure overhead on
    // uniform traffic where every key shows up about once per batch.
    KeyedCounterOptions timing_opts;
    timing_opts.mini_batch = false;
    KeyedCounterOp op("slates", WindowSpec::Tumbling(kWindow), {0, 0, 0.0},
                      timing_opts);
    DrainEmitter drain;
    DriveOp(op, tr.batches, 0, tr.measure_from, drain, 1);
    const std::int64_t allocs_before = HeapAllocs();
    const double slate_ns = DriveOp(op, tr.batches, tr.measure_from,
                                    tr.batches.size(), drain,
                                    tr.measured_rows);
    const double allocs_per_msg =
        static_cast<double>(HeapAllocs() - allocs_before) /
        static_cast<double>(tr.batches.size() - tr.measure_from);
    CAMEO_CHECK(op.live_keys() == static_cast<std::size_t>(num_keys));

    MapReference ref;
    DriveReference(ref, tr.batches, 0, tr.measure_from, 1);
    const std::int64_t map_allocs_before = HeapAllocs();
    const double map_ns = DriveReference(ref, tr.batches, tr.measure_from,
                                         tr.batches.size(), tr.measured_rows);
    const double map_allocs_per_msg =
        static_cast<double>(HeapAllocs() - map_allocs_before) /
        static_cast<double>(tr.batches.size() - tr.measure_from);

    std::printf("%10lld %12.2f %12.2f %7.2fx %12.1f %12.3f %9llu\n",
                static_cast<long long>(num_keys), map_ns, slate_ns,
                map_ns / slate_ns, map_allocs_per_msg, allocs_per_msg,
                static_cast<unsigned long long>(op.store().rehashes()));
    char metric[96];
    std::snprintf(metric, sizeof(metric), "rowwise_map_%lldk.ns_per_row",
                  static_cast<long long>(num_keys / 1000));
    ctx.Metric(metric, map_ns);
    std::snprintf(metric, sizeof(metric), "slates_%lldk.ns_per_row",
                  static_cast<long long>(num_keys / 1000));
    ctx.Metric(metric, slate_ns);
    std::snprintf(metric, sizeof(metric), "slates_%lldk.speedup",
                  static_cast<long long>(num_keys / 1000));
    ctx.Metric(metric, map_ns / slate_ns);
    std::snprintf(metric, sizeof(metric), "slates_%lldk_allocs_per_msg",
                  static_cast<long long>(num_keys / 1000));
    ctx.Metric(metric, allocs_per_msg);
    // Deliberately not named *_allocs_per_msg: the map leg's churn is the
    // contrast, not a zero-allocation claim the gate should hold it to.
    std::snprintf(metric, sizeof(metric), "rowwise_map_%lldk.allocs",
                  static_cast<long long>(num_keys / 1000));
    ctx.Metric(metric, map_allocs_per_msg);
  }
}

// ---------------------------------------------------------------------------
// Parts 2 and 3: full-simulator scenario sweeps.
// ---------------------------------------------------------------------------

void CheckBooks(const KeyedScenarioResult& r) {
  // Conservation identities that hold at any horizon (windows still open at
  // the end hold rows that were seen but not yet emitted, so emission is a
  // lower bound, not an equality).
  CAMEO_CHECK(r.rows_seen > 0);
  CAMEO_CHECK(r.keys_inserted == r.keys_expired + r.keys_live);
  CAMEO_CHECK(r.count_emitted + static_cast<double>(r.late_dropped) <=
              static_cast<double>(r.rows_seen));
}

void RunScenarioSweeps(bench::BenchContext& ctx) {
  const SimTime duration = ctx.Dur(Seconds(30));

  // --- deadline-met rate vs key count (uniform keys, mitigations on) ---
  const std::vector<std::int64_t> universes =
      ctx.smoke ? std::vector<std::int64_t>{10'000, 100'000}
                : std::vector<std::int64_t>{10'000, 100'000, 1'000'000};
  std::printf("\n--- deadline-met rate vs key count (uniform keys) ---\n");
  PrintHeaderRow("keys", {"success", "p99", "live_keys", "rehashes"});
  for (const std::int64_t universe : universes) {
    KeyedScenarioOptions opt;
    opt.dist = KeyDistribution::kUniform;
    opt.num_keys = universe;
    opt.duration = duration;
    KeyedScenarioResult r = RunKeyedScenario(opt);
    CheckBooks(r);
    char label[32];
    std::snprintf(label, sizeof(label), "%lldk",
                  static_cast<long long>(universe / 1000));
    PrintRow(label, {FormatPct(r.run.GroupSuccessRate("KEYED")),
                     FormatMs(r.run.GroupPercentile("KEYED", 99)),
                     std::to_string(r.keys_live),
                     std::to_string(r.slate_rehashes)});
    char metric[96];
    std::snprintf(metric, sizeof(metric), "keys_%lldk.success",
                  static_cast<long long>(universe / 1000));
    ctx.Metric(metric, r.run.GroupSuccessRate("KEYED"));
    std::snprintf(metric, sizeof(metric), "keys_%lldk_p99_ms",
                  static_cast<long long>(universe / 1000));
    ctx.Metric(metric, r.run.GroupPercentile("KEYED", 99));
  }

  // --- Zipf hot-key sweep: unmitigated vs mitigated ---
  // counter_per_tuple is set so balanced load sits near 75% utilization:
  // the hot shard of an unmitigated skewed run saturates (its queue grows
  // for the whole run) while the mitigated run stays subcritical.
  const std::vector<double> skews =
      ctx.smoke ? std::vector<double>{0.0, 1.2}
                : std::vector<double>{0.0, 0.6, 1.0, 1.2, 1.5};
  std::printf("\n--- Zipf hot-key sweep: unmitigated vs split+mini-batch ---\n");
  PrintHeaderRow("zipf_s", {"unmit_succ", "mit_succ", "unmit_p99", "mit_p99"});
  for (const double s : skews) {
    KeyedScenarioOptions base;
    base.dist = KeyDistribution::kZipf;
    base.num_keys = 50'000;
    base.zipf_s = s;
    base.counter_per_tuple = Micros(19);
    base.duration = duration;

    KeyedScenarioOptions unmit = base;
    unmit.splits = 1;
    unmit.mini_batch = false;
    KeyedScenarioResult ru = RunKeyedScenario(unmit);
    CheckBooks(ru);

    KeyedScenarioOptions mit = base;
    mit.splits = 4;
    mit.mini_batch = true;
    KeyedScenarioResult rm = RunKeyedScenario(mit);
    CheckBooks(rm);

    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", s);
    PrintRow(label, {FormatPct(ru.run.GroupSuccessRate("KEYED")),
                     FormatPct(rm.run.GroupSuccessRate("KEYED")),
                     FormatMs(ru.run.GroupPercentile("KEYED", 99)),
                     FormatMs(rm.run.GroupPercentile("KEYED", 99))});
    char metric[96];
    std::snprintf(metric, sizeof(metric), "zipf_s%.1f_unmit.success", s);
    ctx.Metric(metric, ru.run.GroupSuccessRate("KEYED"));
    std::snprintf(metric, sizeof(metric), "zipf_s%.1f_mit.success", s);
    ctx.Metric(metric, rm.run.GroupSuccessRate("KEYED"));
    std::snprintf(metric, sizeof(metric), "zipf_s%.1f_unmit_p99_ms", s);
    ctx.Metric(metric, ru.run.GroupPercentile("KEYED", 99));
    std::snprintf(metric, sizeof(metric), "zipf_s%.1f_mit_p99_ms", s);
    ctx.Metric(metric, rm.run.GroupPercentile("KEYED", 99));
    if (s >= 1.2) {
      const double p99_gain = ru.run.GroupPercentile("KEYED", 99) /
                              std::max(1e-9, rm.run.GroupPercentile("KEYED", 99));
      const double succ_gain = rm.run.GroupSuccessRate("KEYED") /
                               std::max(1e-9, ru.run.GroupSuccessRate("KEYED"));
      std::printf("    s=%.1f mitigation gain: success x%.2f, p99 /%.2f\n", s,
                  succ_gain, p99_gain);
      std::snprintf(metric, sizeof(metric), "zipf_s%.1f.p99_gain", s);
      ctx.Metric(metric, p99_gain);
      std::snprintf(metric, sizeof(metric), "zipf_s%.1f.success_gain", s);
      ctx.Metric(metric, succ_gain);
    }
  }

  // --- CheetahGIS-style spatial grid (hotspot random walk over cells) ---
  std::printf("\n--- spatial grid workload (cell-keyed walkers) ---\n");
  PrintHeaderRow("grid", {"success", "p99", "live_cells", "expired"});
  KeyedScenarioOptions grid;
  grid.dist = KeyDistribution::kGrid;
  grid.grid_width = 256;
  grid.grid_height = 256;
  grid.grid_entities = ctx.smoke ? 4'000 : 20'000;
  // Cells the walkers leave behind expire; the TTL scales with the horizon
  // so even a smoke run sees the full insert -> idle -> expire lifecycle.
  grid.ttl = ctx.smoke ? Seconds(1) : Seconds(5);
  grid.duration = duration;
  KeyedScenarioResult rg = RunKeyedScenario(grid);
  CheckBooks(rg);
  PrintRow("256x256", {FormatPct(rg.run.GroupSuccessRate("KEYED")),
                       FormatMs(rg.run.GroupPercentile("KEYED", 99)),
                       std::to_string(rg.keys_live),
                       std::to_string(rg.keys_expired)});
  ctx.Metric("grid.success", rg.run.GroupSuccessRate("KEYED"));
  ctx.Metric("grid_p99_ms", rg.run.GroupPercentile("KEYED", 99));
  CAMEO_CHECK(rg.keys_expired > 0);  // TTL actually reclaims cold cells
}

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Slates", "keyed slate state at 1M+ keys",
      "pooled slate store vs std::map; hot-key splitting vs saturation");
  RunSlateMicrobench(ctx);
  RunScenarioSweeps(ctx);
}

CAMEO_BENCH_REGISTER("fig_slates", "Slates",
                     "keyed slate store ns/row, hot-key mitigation sweep",
                     Run);

}  // namespace
}  // namespace cameo
