// Figure 8(c): effect of shrinking the worker pool. Paper: Cameo maintains
// Group-1 performance down to 2 workers and still meets ~90% of deadlines
// at 1 worker, while back-pressuring the lax Group-2 jobs (lower BA
// throughput); Orleans and FIFO degrade both groups, Group 1 worst.
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"

namespace cameo {
namespace {

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 8(c)", "latency and throughput vs worker threads",
      "Cameo protects Group 1 even at 1 worker (>=90% deadlines) at the "
      "cost of Group-2 throughput; baselines degrade Group 1 heavily");
  PrintHeaderRow("scheduler", {"workers", "LS_med", "LS_p99", "LS_met",
                               "BA_med", "BA_ktuple/s"});
  const std::vector<int> worker_counts =
      ctx.smoke ? std::vector<int>{4, 1} : std::vector<int>{8, 4, 2, 1};
  for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kOrleans,
                             SchedulerKind::kFifo}) {
    for (int workers : worker_counts) {
      MultiTenantOptions opt;
      opt.scheduler = kind;
      opt.workers = workers;
      opt.duration = ctx.Dur(Seconds(60));
      opt.ls_jobs = 4;
      opt.ba_jobs = 8;
      opt.ba_msgs_per_sec = 10;  // ~1.7 workers of offered load
      RunResult r = RunMultiTenant(opt);
      char tp[32];
      std::snprintf(tp, sizeof(tp), "%.0f",
                    r.GroupThroughput("BA") / 1000.0);
      PrintRow(ToString(kind),
               {std::to_string(workers),
                FormatMs(r.GroupPercentile("LS", 50)),
                FormatMs(r.GroupPercentile("LS", 99)),
                FormatPct(r.GroupSuccessRate("LS")),
                FormatMs(r.GroupPercentile("BA", 50)), tp});
      const std::string key =
          ToString(kind) + ".workers" + std::to_string(workers);
      ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
      ctx.Metric(key + ".LS_success", r.GroupSuccessRate("LS"));
      ctx.Metric(key + ".BA_tuples_per_sec", r.GroupThroughput("BA"));
    }
  }
}

CAMEO_BENCH_REGISTER("fig08c_threads", "Figure 8(c)",
                     "latency and throughput vs worker thread count",
                     Run);

}  // namespace
}  // namespace cameo
