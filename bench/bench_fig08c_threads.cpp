// Figure 8(c): effect of shrinking the worker pool. Paper: Cameo maintains
// Group-1 performance down to 2 workers and still meets ~90% of deadlines
// at 1 worker, while back-pressuring the lax Group-2 jobs (lower BA
// throughput); Orleans and FIFO degrade both groups, Group 1 worst.
//
// The second panel is wall-clock: the real ThreadRuntime drains a fixed
// backlog at 1..8 workers. With the sharded control plane (lock-free
// mailboxes + detached ready queues) throughput must scale monotonically
// with the worker count instead of flatlining on a global dispatch lock;
// per-message cost is sleep-dominated so the sweep is meaningful even on
// small CI machines.
#include <chrono>
#include <cstdio>

#include "bench/runner/registry.h"
#include "bench_util/report.h"
#include "bench_util/scenarios.h"
#include "ops/sink.h"
#include "ops/source.h"
#include "runtime/thread_runtime.h"

namespace cameo {
namespace {

/// Wall-clock scaling: K independent source->sink pipelines, per-message
/// cost ~4 ms (sleep-dominated), fixed pre-loaded backlog, measure Drain().
void RuntimeScalingPanel(bench::BenchContext& ctx) {
  std::printf(
      "\n=== Figure 8(c) wall-clock panel: ThreadRuntime scaling ===\n");
  std::printf("%-12s %16s %16s\n", "workers", "drain_ms", "msgs_per_sec");
  const int kJobs = 16;
  const int kMsgsPerJob = ctx.smoke ? 15 : 60;
  for (int workers : {1, 2, 4, 8}) {
    DataflowGraph graph;
    std::vector<OperatorId> sources;
    for (int j = 0; j < kJobs; ++j) {
      JobSpec spec;
      spec.name = "scale" + std::to_string(j);
      spec.latency_constraint = Seconds(60);
      spec.output_slide = 0;
      JobId job = graph.AddJob(spec);
      StageId src = graph.AddStage(job, "src", 1, [](int) {
        return std::make_unique<SourceOp>("src",
                                          CostModel{Millis(4), 0, 0});
      });
      StageId sink = graph.AddStage(job, "sink", 1, [](int) {
        return std::make_unique<SinkOp>("sink", CostModel{});
      });
      graph.Connect(src, sink, Partition::kOneToOne);
      sources.push_back(graph.stage(src).operators[0]);
    }
    RuntimeConfig cfg;
    cfg.num_workers = workers;
    cfg.emulate_cost = true;  // 4 ms sleep-dominated cost per source message
    ThreadRuntime rt(cfg, std::move(graph));
    for (int k = 0; k < kMsgsPerJob; ++k) {
      for (OperatorId src : sources) rt.Ingest(src, 1, k + 1);
    }
    const auto t0 = std::chrono::steady_clock::now();
    rt.Start();
    rt.Drain();
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    rt.Stop();
    const double total = static_cast<double>(kJobs) * kMsgsPerJob;
    std::printf("%-12d %16.1f %16.0f\n", workers, sec * 1e3, total / sec);
    const std::string key = "runtime_scaling.workers" + std::to_string(workers);
    ctx.Metric(key + ".msgs_per_sec", total / sec);
    ctx.Metric(key + ".drain_ms", sec * 1e3);
  }
}

void Run(bench::BenchContext& ctx) {
  PrintFigureBanner(
      "Figure 8(c)", "latency and throughput vs worker threads",
      "Cameo protects Group 1 even at 1 worker (>=90% deadlines) at the "
      "cost of Group-2 throughput; baselines degrade Group 1 heavily");
  PrintHeaderRow("scheduler", {"workers", "LS_med", "LS_p99", "LS_met",
                               "BA_med", "BA_ktuple/s"});
  const std::vector<int> worker_counts =
      ctx.smoke ? std::vector<int>{4, 1} : std::vector<int>{8, 4, 2, 1};
  for (SchedulerKind kind : {SchedulerKind::kCameo, SchedulerKind::kOrleans,
                             SchedulerKind::kFifo}) {
    for (int workers : worker_counts) {
      MultiTenantOptions opt;
      opt.scheduler = kind;
      opt.workers = workers;
      opt.duration = ctx.Dur(Seconds(60));
      opt.ls_jobs = 4;
      opt.ba_jobs = 8;
      opt.ba_msgs_per_sec = 10;  // ~1.7 workers of offered load
      RunResult r = RunMultiTenant(opt);
      char tp[32];
      std::snprintf(tp, sizeof(tp), "%.0f",
                    r.GroupThroughput("BA") / 1000.0);
      PrintRow(ToString(kind),
               {std::to_string(workers),
                FormatMs(r.GroupPercentile("LS", 50)),
                FormatMs(r.GroupPercentile("LS", 99)),
                FormatPct(r.GroupSuccessRate("LS")),
                FormatMs(r.GroupPercentile("BA", 50)), tp});
      const std::string key =
          ToString(kind) + ".workers" + std::to_string(workers);
      ctx.Metric(key + ".LS_p99_ms", r.GroupPercentile("LS", 99));
      ctx.Metric(key + ".LS_success", r.GroupSuccessRate("LS"));
      ctx.Metric(key + ".BA_tuples_per_sec", r.GroupThroughput("BA"));
    }
  }
  RuntimeScalingPanel(ctx);
}

CAMEO_BENCH_REGISTER("fig08c_threads", "Figure 8(c)",
                     "latency and throughput vs worker thread count",
                     Run);

}  // namespace
}  // namespace cameo
