// Scenario registry for the unified benchmark runner. Every paper figure
// lives in one bench/bench_*.cpp translation unit that registers a run
// function here; the cameo_bench CLI lists and dispatches them by name.
//
// A scenario receives a BenchContext: `smoke` asks it to shrink simulated
// durations/sweeps so the run finishes in seconds (ctest gates every
// scenario's smoke mode), and `report` collects the headline numbers that
// the runner serializes to BENCH_<name>.json.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util/report.h"
#include "common/time.h"

namespace cameo::bench {

struct BenchContext {
  bool smoke = false;
  BenchReport* report = nullptr;

  /// Shrinks a simulated run length in smoke mode (capped at `cap`).
  SimTime Dur(SimTime full, SimTime cap = Seconds(5)) const {
    return smoke ? std::min(full, cap) : full;
  }

  /// Records a metric if a report sink is attached (scenarios stay runnable
  /// without one).
  void Metric(const std::string& key, double value) const {
    if (report != nullptr) report->Metric(key, value);
  }

  void AddRun(const std::string& scope, const RunResult& result) const {
    if (report != nullptr) report->AddRun(scope, result);
  }
};

using BenchFn = void (*)(BenchContext&);

struct BenchInfo {
  std::string name;     // CLI name, e.g. "fig01_util_latency"
  std::string figure;   // paper figure, e.g. "Figure 1"
  std::string summary;  // one line for --list
  BenchFn fn = nullptr;
};

/// All registered scenarios, sorted by name.
std::vector<const BenchInfo*> AllBenchmarks();

/// nullptr if `name` is not registered.
const BenchInfo* FindBenchmark(const std::string& name);

/// Called by CAMEO_BENCH_REGISTER at static-init time; the return value only
/// exists to anchor the registration to a variable.
int RegisterBenchmark(const char* name, const char* figure,
                      const char* summary, BenchFn fn);

/// Registers the translation unit's scenario. Use once per bench_*.cpp,
/// inside its anonymous namespace.
#define CAMEO_BENCH_REGISTER(name, figure, summary, fn)        \
  const int cameo_bench_registered_ =                          \
      ::cameo::bench::RegisterBenchmark(name, figure, summary, fn)

}  // namespace cameo::bench
