// cameo_bench: one CLI for every paper-figure scenario.
//
//   cameo_bench --list                 show registered scenarios
//   cameo_bench --run <name> [...]     run the named scenario(s)
//   cameo_bench --smoke                shrink durations; with no --run,
//                                      runs every scenario
//   cameo_bench --repeat <k>           run each scenario k times; the JSON
//                                      reports the median per metric plus a
//                                      <metric>.min companion, so perf
//                                      comparisons resist scheduler noise
//   cameo_bench --out <dir>            where BENCH_<name>.json lands
//                                      (default: current directory)
//
// Exit status is non-zero if any requested scenario is unknown, throws, or
// its JSON report cannot be written.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/runner/registry.h"

namespace cameo::bench {
namespace {

void PrintUsage() {
  std::printf(
      "usage: cameo_bench [--list] [--run <name>]... [--smoke] "
      "[--repeat <k>] [--out <dir>]\n"
      "  --list        list registered scenarios and exit\n"
      "  --run <name>  run one scenario (repeatable)\n"
      "  --smoke       fast mode: shrink simulated durations and sweeps;\n"
      "                without --run, runs every scenario\n"
      "  --repeat <k>  run each scenario k times; JSON metrics are the\n"
      "                median across repeats plus <metric>.min\n"
      "  --out <dir>   directory for BENCH_<name>.json (default: .)\n");
}

void PrintList() {
  std::printf("%-24s %-16s %s\n", "name", "figure", "summary");
  for (const BenchInfo* info : AllBenchmarks()) {
    std::printf("%-24s %-16s %s\n", info->name.c_str(), info->figure.c_str(),
                info->summary.c_str());
  }
}

/// One measured execution of a scenario into `report`. Returns false if the
/// scenario threw.
bool RunScenarioOnce(const BenchInfo& info, bool smoke, BenchReport& report) {
  BenchContext ctx;
  ctx.smoke = smoke;
  ctx.report = &report;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    info.fn(ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench %s failed: %s\n", info.name.c_str(), e.what());
    return false;
  }
  report.Metric(
      "runner.wall_sec",
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
  return true;
}

/// Folds `repeats` per-run reports into one: each metric key reports its
/// median (a robust center under scheduler/CPU noise) plus a `.min`
/// companion (the least-noise observation, the right statistic for
/// microbenchmark cost comparisons).
void AggregateRepeats(const std::vector<BenchReport>& runs,
                      BenchReport& merged) {
  std::vector<std::string> order;  // first-run insertion order
  std::map<std::string, std::vector<double>> by_key;
  for (const BenchReport& run : runs) {
    for (const auto& [key, value] : run.metrics()) {
      auto [it, inserted] = by_key.emplace(key, std::vector<double>{});
      if (inserted) order.push_back(key);
      it->second.push_back(value);
    }
  }
  for (const std::string& key : order) {
    std::vector<double>& vals = by_key[key];
    std::sort(vals.begin(), vals.end());
    const std::size_t n = vals.size();
    const double median = n % 2 == 1
                              ? vals[n / 2]
                              : 0.5 * (vals[n / 2 - 1] + vals[n / 2]);
    merged.Metric(key, median);
    merged.Metric(key + ".min", vals.front());
  }
}

bool RunOne(const BenchInfo& info, bool smoke, int repeat,
            const std::string& out_dir) {
  std::printf("\n##### bench %s (%s)%s #####\n", info.name.c_str(),
              info.figure.c_str(), smoke ? " [smoke]" : "");
  BenchReport report(info.name);
  report.Meta("figure", info.figure);
  report.Meta("summary", info.summary);
  report.Meta("mode", smoke ? "smoke" : "full");

  const auto t0 = std::chrono::steady_clock::now();
  if (repeat <= 1) {
    if (!RunScenarioOnce(info, smoke, report)) return false;
  } else {
    report.Meta("repeats", std::to_string(repeat));
    std::vector<BenchReport> runs;
    for (int r = 0; r < repeat; ++r) {
      std::printf("--- repeat %d/%d ---\n", r + 1, repeat);
      runs.emplace_back(info.name);
      if (!RunScenarioOnce(info, smoke, runs.back())) return false;
    }
    AggregateRepeats(runs, report);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::string path = out_dir + "/BENCH_" + info.name + ".json";
  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "bench %s: cannot write %s\n", info.name.c_str(),
                 path.c_str());
    return false;
  }
  std::printf("##### bench %s done in %.2fs -> %s #####\n", info.name.c_str(),
              wall, path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  bool list = false;
  bool smoke = false;
  int repeat = 1;
  std::string out_dir = ".";
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--run") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--run needs a scenario name\n");
        return 2;
      }
      names.emplace_back(argv[++i]);
    } else if (std::strcmp(arg, "--repeat") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--repeat needs a count\n");
        return 2;
      }
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out needs a directory\n");
        return 2;
      }
      out_dir = argv[++i];
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      PrintUsage();
      return 2;
    }
  }

  if (list) {
    PrintList();
    return 0;
  }
  if (names.empty() && !smoke) {
    PrintUsage();
    std::printf("\n");
    PrintList();
    return 0;
  }

  std::vector<const BenchInfo*> selected;
  if (names.empty()) {
    selected = AllBenchmarks();  // --smoke alone: everything
  } else {
    for (const std::string& name : names) {
      const BenchInfo* info = FindBenchmark(name);
      if (info == nullptr) {
        std::fprintf(stderr,
                     "unknown scenario: %s (cameo_bench --list shows all)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(info);
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create --out directory %s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 2;
  }

  int failures = 0;
  for (const BenchInfo* info : selected) {
    if (!RunOne(*info, smoke, repeat, out_dir)) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d scenario(s) failed\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cameo::bench

int main(int argc, char** argv) { return cameo::bench::Main(argc, argv); }
