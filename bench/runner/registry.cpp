#include "bench/runner/registry.h"

namespace cameo::bench {

namespace {

// Meyers singleton so registrations from other translation units' static
// initializers are ordered safely.
std::vector<BenchInfo>& Registry() {
  static std::vector<BenchInfo> registry;
  return registry;
}

}  // namespace

int RegisterBenchmark(const char* name, const char* figure,
                      const char* summary, BenchFn fn) {
  Registry().push_back(BenchInfo{name, figure, summary, fn});
  return static_cast<int>(Registry().size());
}

std::vector<const BenchInfo*> AllBenchmarks() {
  std::vector<const BenchInfo*> out;
  out.reserve(Registry().size());
  for (const BenchInfo& info : Registry()) out.push_back(&info);
  std::sort(out.begin(), out.end(),
            [](const BenchInfo* a, const BenchInfo* b) {
              return a->name < b->name;
            });
  return out;
}

const BenchInfo* FindBenchmark(const std::string& name) {
  for (const BenchInfo& info : Registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

}  // namespace cameo::bench
